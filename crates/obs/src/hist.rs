//! Power-of-two bucketed histogram for timing distributions.
//!
//! Queue waits and per-workload wall times span many orders of magnitude;
//! a log2 histogram captures their shape in a fixed 65-slot array with an
//! O(1) `record` and an exact merge, which is what lets per-worker shard
//! histograms be combined without losing samples.

/// Histogram over `u64` samples with one bucket per power of two.
///
/// Bucket 0 holds the value 0; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b - 1]`, so bucket 64 holds `[2^63, u64::MAX]`. Besides
/// the buckets it tracks count, saturating sum, min and max, which is
/// enough for mean and bucket-edge-bounded quantile estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; Log2Histogram::BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Number of buckets: one for zero plus one per bit of `u64`.
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: [0; Log2Histogram::BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample.
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            1 + value.ilog2() as usize
        }
    }

    /// Inclusive `[lo, hi]` value range covered by a bucket.
    pub fn bucket_range(bucket: usize) -> (u64, u64) {
        assert!(bucket < Log2Histogram::BUCKETS, "bucket out of range");
        if bucket == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (bucket - 1);
            let hi = if bucket == 64 { u64::MAX } else { (1u64 << bucket) - 1 };
            (lo, hi)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Sums another histogram into this one. Merging per-shard histograms
    /// yields exactly the histogram of the combined sample stream.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples, if any.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Per-bucket occupancy.
    pub fn buckets(&self) -> &[u64; Log2Histogram::BUCKETS] {
        &self.buckets
    }

    /// Bounds `(lo, hi)` on the `q`-quantile (0 < q <= 1): the true
    /// quantile of the recorded samples lies within the returned bucket's
    /// value range, tightened by the observed min and max.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the quantile sample, 1-based, nearest-rank definition.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for bucket in 0..Log2Histogram::BUCKETS {
            seen += self.buckets[bucket];
            if seen >= target {
                let (lo, hi) = Log2Histogram::bucket_range(bucket);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        unreachable!("count > 0 implies some bucket reaches the target rank")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        for b in 0..Log2Histogram::BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_range(b);
            assert_eq!(Log2Histogram::bucket_of(lo), b);
            assert_eq!(Log2Histogram::bucket_of(hi), b);
        }
    }

    #[test]
    fn record_tracks_summary_stats() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(251.5));
    }

    #[test]
    fn merge_equals_single() {
        let samples = [0u64, 3, 3, 7, 100, 5000, u64::MAX];
        let mut whole = Log2Histogram::new();
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for (i, &s) in samples.iter().enumerate() {
            whole.record(s);
            if i % 2 == 0 {
                a.record(s)
            } else {
                b.record(s)
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn quantile_bounds_bracket_true_quantile() {
        let mut h = Log2Histogram::new();
        let mut samples: Vec<u64> = (1..=100).map(|i| i * 3).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[rank - 1];
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(lo <= truth && truth <= hi, "q={q}: {truth} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Log2Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile_bounds(0.5), None);
    }
}
