//! The event taxonomy: what the profiler counts about itself.
//!
//! Hot paths (TNV table maintenance, the convergent sampler's state
//! machine) keep plain `u64` event counters — deterministic and mergeable,
//! so parallel suite runs produce byte-identical counts to serial ones.
//! [`Counts`] is the fixed-size vector those counters flush into at phase
//! boundaries, and what a [`Recorder`](crate::Recorder) aggregates.

use crate::json::Json;

/// One named self-profiling counter.
///
/// The taxonomy covers the three layers of the pipeline: instrumentation
/// events delivered by the ATOM-style runner, TNV-table maintenance work
/// inside the trackers, and the sampling decisions of the low-overhead
/// profilers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterId {
    /// `after_instr` analysis callbacks delivered.
    InstrEvents,
    /// `on_load` analysis callbacks delivered.
    LoadEvents,
    /// `on_store` analysis callbacks delivered.
    StoreEvents,
    /// `on_proc_entry` analysis callbacks delivered.
    ProcEntryEvents,
    /// `on_proc_exit` analysis callbacks delivered.
    ProcExitEvents,
    /// TNV observations that hit a resident value.
    TnvHits,
    /// TNV observations that filled a free slot.
    TnvInserts,
    /// TNV observations that replaced a resident entry.
    TnvEvictions,
    /// Periodic lower-part clear operations.
    TnvClears,
    /// Entries dropped by clear operations.
    TnvClearedEntries,
    /// Convergent profiler transitions into the skipping phase.
    ConvBackoffs,
    /// Convergent profiler transitions back to profiling.
    ConvResumes,
    /// Executions the convergent profiler profiled.
    ConvProfiled,
    /// Executions the convergent profiler skipped.
    ConvSkipped,
    /// Executions the flat sampler profiled.
    SampleTaken,
    /// Executions the flat sampler skipped.
    SampleSkipped,
    /// Workloads profiled by a suite run.
    WorkloadsProfiled,
    /// Items executed by parallel-map workers.
    WorkerItems,
    /// Workload attempts that panicked and were caught by the runner.
    WorkloadPanic,
    /// Workload re-attempts after a caught panic.
    WorkloadRetry,
    /// Workloads given up on after the retry budget was exhausted.
    WorkloadQuarantined,
    /// Shard profilers run by the intra-workload sharded path.
    TraceShards,
    /// Value-trace events replayed through the batched/sharded path.
    TraceEvents,
    /// Binary trace chunks encoded or decoded.
    TraceChunks,
    /// Workload attempts cancelled for exceeding the wall-clock deadline.
    WorkloadTimeout,
    /// Entities degraded full-profile → TNV-only by the memory governor.
    EntitiesDegraded,
    /// Entities dropped entirely by the memory governor.
    EntitiesDropped,
    /// Stores dropped by the memory profiler's location cap.
    MemDropped,
    /// Phase-signature windows completed by the adaptive detector.
    PhaseWindows,
    /// Distribution shifts the adaptive detector flagged.
    PhaseShifts,
    /// Converged entities re-armed after a detected shift.
    PhaseRearms,
    /// Re-arms denied because the entity's budget was exhausted.
    PhaseRearmsDenied,
    /// Worker processes spawned by the distributed suite executor.
    WorkerSpawns,
    /// Worker processes that died mid-assignment (killed, aborted, or
    /// gone with a torn result frame).
    WorkerDeaths,
    /// Worker processes spawned to replace a dead one.
    WorkerRestarts,
    /// Specialization guards that matched their profiled value.
    GuardHits,
    /// Specialization guards that fell through to the slow path.
    GuardMisses,
    /// Load sites specialized by the optimize pipeline.
    SitesSpecialized,
    /// Candidate load sites rejected by the optimize pipeline.
    CandidatesRejected,
    /// Sessions the serve daemon rejected at admission (BUSY).
    SessionRejected,
    /// Sessions the serve daemon killed (fault, protocol violation,
    /// idle reap, or drain before END).
    SessionKilled,
    /// Sessions that reached END and checkpointed cleanly.
    SessionCompleted,
    /// Chunks durably checkpointed and cumulatively acked to clients.
    ChunksAcked,
}

impl CounterId {
    /// Number of defined counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Every counter, in canonical (rendering) order.
    pub const ALL: [CounterId; 43] = [
        CounterId::InstrEvents,
        CounterId::LoadEvents,
        CounterId::StoreEvents,
        CounterId::ProcEntryEvents,
        CounterId::ProcExitEvents,
        CounterId::TnvHits,
        CounterId::TnvInserts,
        CounterId::TnvEvictions,
        CounterId::TnvClears,
        CounterId::TnvClearedEntries,
        CounterId::ConvBackoffs,
        CounterId::ConvResumes,
        CounterId::ConvProfiled,
        CounterId::ConvSkipped,
        CounterId::SampleTaken,
        CounterId::SampleSkipped,
        CounterId::WorkloadsProfiled,
        CounterId::WorkerItems,
        CounterId::WorkloadPanic,
        CounterId::WorkloadRetry,
        CounterId::WorkloadQuarantined,
        CounterId::TraceShards,
        CounterId::TraceEvents,
        CounterId::TraceChunks,
        CounterId::WorkloadTimeout,
        CounterId::EntitiesDegraded,
        CounterId::EntitiesDropped,
        CounterId::MemDropped,
        CounterId::PhaseWindows,
        CounterId::PhaseShifts,
        CounterId::PhaseRearms,
        CounterId::PhaseRearmsDenied,
        CounterId::WorkerSpawns,
        CounterId::WorkerDeaths,
        CounterId::WorkerRestarts,
        CounterId::GuardHits,
        CounterId::GuardMisses,
        CounterId::SitesSpecialized,
        CounterId::CandidatesRejected,
        CounterId::SessionRejected,
        CounterId::SessionKilled,
        CounterId::SessionCompleted,
        CounterId::ChunksAcked,
    ];

    /// Stable snake_case name used in telemetry records.
    pub fn name(self) -> &'static str {
        match self {
            CounterId::InstrEvents => "instr_events",
            CounterId::LoadEvents => "load_events",
            CounterId::StoreEvents => "store_events",
            CounterId::ProcEntryEvents => "proc_entry_events",
            CounterId::ProcExitEvents => "proc_exit_events",
            CounterId::TnvHits => "tnv_hits",
            CounterId::TnvInserts => "tnv_inserts",
            CounterId::TnvEvictions => "tnv_evictions",
            CounterId::TnvClears => "tnv_clears",
            CounterId::TnvClearedEntries => "tnv_cleared_entries",
            CounterId::ConvBackoffs => "conv_backoffs",
            CounterId::ConvResumes => "conv_resumes",
            CounterId::ConvProfiled => "conv_profiled",
            CounterId::ConvSkipped => "conv_skipped",
            CounterId::SampleTaken => "sample_taken",
            CounterId::SampleSkipped => "sample_skipped",
            CounterId::WorkloadsProfiled => "workloads_profiled",
            CounterId::WorkerItems => "worker_items",
            CounterId::WorkloadPanic => "workload_panics",
            CounterId::WorkloadRetry => "workload_retries",
            CounterId::WorkloadQuarantined => "workload_quarantined",
            CounterId::TraceShards => "trace_shards",
            CounterId::TraceEvents => "trace_events",
            CounterId::TraceChunks => "trace_chunks",
            CounterId::WorkloadTimeout => "workload_timeouts",
            CounterId::EntitiesDegraded => "entities_degraded",
            CounterId::EntitiesDropped => "entities_dropped",
            CounterId::MemDropped => "mem_dropped",
            CounterId::PhaseWindows => "phase_windows",
            CounterId::PhaseShifts => "phase_shifts",
            CounterId::PhaseRearms => "phase_rearms",
            CounterId::PhaseRearmsDenied => "phase_rearms_denied",
            CounterId::WorkerSpawns => "worker_spawns",
            CounterId::WorkerDeaths => "worker_deaths",
            CounterId::WorkerRestarts => "worker_restarts",
            CounterId::GuardHits => "guard_hits",
            CounterId::GuardMisses => "guard_misses",
            CounterId::SitesSpecialized => "sites_specialized",
            CounterId::CandidatesRejected => "candidates_rejected",
            CounterId::SessionRejected => "session_rejected",
            CounterId::SessionKilled => "session_killed",
            CounterId::SessionCompleted => "session_completed",
            CounterId::ChunksAcked => "chunks_acked",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).expect("counter listed in ALL")
    }
}

/// A fixed-size vector of counter values — one slot per [`CounterId`].
///
/// ```
/// use vp_obs::{CounterId, Counts};
///
/// let mut c = Counts::new();
/// c.add(CounterId::TnvHits, 10);
/// c.add(CounterId::TnvInserts, 2);
/// assert_eq!(c.get(CounterId::TnvHits), 10);
/// assert_eq!(c.total(), 12);
/// assert_eq!(c.to_json().render(), r#"{"tnv_hits":10,"tnv_inserts":2}"#);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    values: [u64; CounterId::COUNT],
}

// Manual impl: `[u64; N]` only derives `Default` up to N = 32.
impl Default for Counts {
    fn default() -> Counts {
        Counts { values: [0; CounterId::COUNT] }
    }
}

impl Counts {
    /// All-zero counts.
    pub fn new() -> Counts {
        Counts::default()
    }

    /// Adds `n` to one counter.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.values[id.index()] += n;
    }

    /// Current value of one counter.
    pub fn get(&self, id: CounterId) -> u64 {
        self.values[id.index()]
    }

    /// Sums another count vector into this one.
    pub fn merge(&mut self, other: &Counts) {
        for (mine, theirs) in self.values.iter_mut().zip(&other.values) {
            *mine += theirs;
        }
    }

    /// Sum over all counters.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// `(id, value)` pairs of the non-zero counters, in canonical order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (CounterId, u64)> + '_ {
        CounterId::ALL.into_iter().map(|id| (id, self.get(id))).filter(|&(_, v)| v > 0)
    }

    /// Renders the non-zero counters as an ordered JSON object, so equal
    /// counts always serialize to identical bytes.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.iter_nonzero().map(|(id, v)| (id.name().to_string(), Json::U64(v))).collect(),
        )
    }

    /// Reads counts back from a telemetry JSON object, ignoring unknown
    /// keys (forward compatibility) and missing ones (zero).
    pub fn from_json(json: &Json) -> Counts {
        let mut out = Counts::new();
        if let Json::Obj(fields) = json {
            for (key, value) in fields {
                if let Some(id) = CounterId::ALL.iter().find(|id| id.name() == key) {
                    out.add(*id, value.as_u64().unwrap_or(0));
                }
            }
        }
        out
    }
}

/// TNV-table maintenance events, kept by every [`TnvTable`] as plain
/// increments on paths that already touch the entry array.
///
/// Invariant: `hits + inserts + evictions` equals the table's observation
/// count — every observation takes exactly one of the three paths.
///
/// [`TnvTable`]: https://docs.rs/vp-core
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TnvEvents {
    /// Observations of a value already resident.
    pub hits: u64,
    /// Observations that filled a free slot.
    pub inserts: u64,
    /// Observations that replaced a resident entry.
    pub evictions: u64,
    /// Periodic clear operations performed.
    pub clears: u64,
    /// Entries dropped by those clears.
    pub cleared_entries: u64,
}

impl TnvEvents {
    /// Sums another event set into this one (shard merge).
    pub fn merge(&mut self, other: &TnvEvents) {
        self.hits += other.hits;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.clears += other.clears;
        self.cleared_entries += other.cleared_entries;
    }

    /// Flushes into a count vector.
    pub fn add_to(&self, counts: &mut Counts) {
        counts.add(CounterId::TnvHits, self.hits);
        counts.add(CounterId::TnvInserts, self.inserts);
        counts.add(CounterId::TnvEvictions, self.evictions);
        counts.add(CounterId::TnvClears, self.clears);
        counts.add(CounterId::TnvClearedEntries, self.cleared_entries);
    }

    /// Total observations accounted for (`hits + inserts + evictions`).
    pub fn observations(&self) -> u64 {
        self.hits + self.inserts + self.evictions
    }
}

/// Convergent-sampler state-machine events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvEvents {
    /// Transitions from profiling into a skip interval.
    pub backoffs: u64,
    /// Transitions from a skip interval back to profiling.
    pub resumes: u64,
    /// Executions profiled into a tracker.
    pub profiled: u64,
    /// Executions skipped.
    pub skipped: u64,
}

impl ConvEvents {
    /// Sums another event set into this one (shard merge).
    pub fn merge(&mut self, other: &ConvEvents) {
        self.backoffs += other.backoffs;
        self.resumes += other.resumes;
        self.profiled += other.profiled;
        self.skipped += other.skipped;
    }

    /// Flushes into a count vector.
    pub fn add_to(&self, counts: &mut Counts) {
        counts.add(CounterId::ConvBackoffs, self.backoffs);
        counts.add(CounterId::ConvResumes, self.resumes);
        counts.add(CounterId::ConvProfiled, self.profiled);
        counts.add(CounterId::ConvSkipped, self.skipped);
    }
}

/// Flat-sampler take/skip decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleEvents {
    /// Executions profiled.
    pub taken: u64,
    /// Executions skipped.
    pub skipped: u64,
}

impl SampleEvents {
    /// Sums another event set into this one (shard merge).
    pub fn merge(&mut self, other: &SampleEvents) {
        self.taken += other.taken;
        self.skipped += other.skipped;
    }

    /// Flushes into a count vector.
    pub fn add_to(&self, counts: &mut Counts) {
        counts.add(CounterId::SampleTaken, self.taken);
        counts.add(CounterId::SampleSkipped, self.skipped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
        assert_eq!(CounterId::COUNT, n);
    }

    #[test]
    fn counts_round_trip_through_json() {
        let mut c = Counts::new();
        c.add(CounterId::TnvHits, 7);
        c.add(CounterId::WorkerItems, 3);
        let back = Counts::from_json(&c.to_json());
        assert_eq!(back, c);
    }

    #[test]
    fn counts_merge_sums() {
        let mut a = Counts::new();
        a.add(CounterId::InstrEvents, 5);
        let mut b = Counts::new();
        b.add(CounterId::InstrEvents, 2);
        b.add(CounterId::LoadEvents, 1);
        a.merge(&b);
        assert_eq!(a.get(CounterId::InstrEvents), 7);
        assert_eq!(a.get(CounterId::LoadEvents), 1);
        assert_eq!(a.total(), 8);
    }

    #[test]
    fn event_structs_flush_and_merge() {
        let mut tnv =
            TnvEvents { hits: 5, inserts: 2, evictions: 1, clears: 1, cleared_entries: 3 };
        tnv.merge(&TnvEvents { hits: 1, ..TnvEvents::default() });
        assert_eq!(tnv.observations(), 9);
        let mut c = Counts::new();
        tnv.add_to(&mut c);
        ConvEvents { backoffs: 1, resumes: 1, profiled: 10, skipped: 90 }.add_to(&mut c);
        SampleEvents { taken: 4, skipped: 6 }.add_to(&mut c);
        assert_eq!(c.get(CounterId::TnvHits), 6);
        assert_eq!(c.get(CounterId::ConvSkipped), 90);
        assert_eq!(c.get(CounterId::SampleTaken), 4);
    }

    #[test]
    fn unknown_json_keys_are_ignored() {
        let json = Json::parse(r#"{"tnv_hits":4,"not_a_counter":9}"#).unwrap();
        let c = Counts::from_json(&json);
        assert_eq!(c.get(CounterId::TnvHits), 4);
        assert_eq!(c.total(), 4);
    }
}
