//! Human-readable summary of a telemetry file: `vprof stats <file>`.
//!
//! Renders run headers, a per-workload table and phase timings from the
//! records defined in [`telemetry`](crate::telemetry). Unknown record
//! kinds are counted but otherwise ignored, so the command keeps working
//! when newer producers add record types.

use crate::counter::{CounterId, Counts};
use crate::json::Json;
use crate::telemetry::parse_jsonl;

/// Summarizes a `telemetry.jsonl` document into a table for humans.
pub fn summarize(jsonl: &str) -> Result<String, String> {
    summarize_records(&parse_jsonl(jsonl)?)
}

/// Summarizes already-parsed telemetry records — the entry point for
/// callers that parsed leniently (see
/// [`parse_jsonl_lenient`](crate::telemetry::parse_jsonl_lenient)).
pub fn summarize_records(records: &[Json]) -> Result<String, String> {
    if records.is_empty() {
        return Err("no telemetry records".to_string());
    }

    let mut out = String::new();
    let mut workloads: Vec<&Json> = Vec::new();
    let mut phases: Vec<&Json> = Vec::new();
    let mut failures: Vec<&Json> = Vec::new();
    let mut optimized: Vec<&Json> = Vec::new();
    let mut serves: Vec<&Json> = Vec::new();
    let mut sessions: Vec<&Json> = Vec::new();
    let mut unknown = 0usize;

    for rec in records {
        match rec.get("kind").and_then(Json::as_str) {
            Some("run") => {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&run_header(rec));
            }
            Some("workload") => workloads.push(rec),
            Some("phase") => phases.push(rec),
            Some("faults") => {
                out.push_str(&faults_line(rec));
            }
            Some("failure") => failures.push(rec),
            Some("optimize") => optimized.push(rec),
            Some("serve") => serves.push(rec),
            Some("session") => sessions.push(rec),
            _ => unknown += 1,
        }
    }

    if !workloads.is_empty() {
        out.push('\n');
        out.push_str(&workload_table(&workloads));
    }
    let governed: Vec<&Json> =
        workloads.iter().copied().filter(|r| r.get("governor").is_some()).collect();
    if !governed.is_empty() {
        out.push('\n');
        out.push_str(&governor_table(&governed));
    }
    let adaptive: Vec<&Json> =
        workloads.iter().copied().filter(|r| r.get("phase").is_some()).collect();
    if !adaptive.is_empty() {
        out.push('\n');
        out.push_str(&adaptive_table(&adaptive));
    }
    if !optimized.is_empty() {
        out.push('\n');
        out.push_str(&optimize_table(&optimized));
    }
    if !serves.is_empty() || !sessions.is_empty() {
        out.push('\n');
        out.push_str(&serve_section(&serves, &sessions));
    }
    if !failures.is_empty() {
        out.push('\n');
        out.push_str(&failure_table(&failures));
    }
    if !phases.is_empty() {
        out.push('\n');
        out.push_str("phases:\n");
        for rec in &phases {
            let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
            out.push_str(&format!("  {:<24} {:>10}\n", name, ms(rec.get("phase_ns"))));
        }
    }
    if unknown > 0 {
        out.push_str(&format!("\n({unknown} record(s) of unknown kind ignored)\n"));
    }
    Ok(out)
}

fn faults_line(rec: &Json) -> String {
    let counts = rec.get("events").map(Counts::from_json).unwrap_or_default();
    let mut line = "faults:".to_string();
    for (id, value) in counts.iter_nonzero() {
        line.push_str(&format!("  {}={}", id.name(), value));
    }
    line.push('\n');
    line
}

fn failure_table(failures: &[&Json]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<16} {:>8}  {:<12}  error\n", "failed", "attempts", "kind"));
    for rec in failures {
        let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
        let attempts = rec.get("attempts").and_then(Json::as_u64).unwrap_or(0);
        // Records from producers predating the deadline watchdog carry no
        // failure_kind — everything they quarantined was a panic.
        let kind = rec.get("failure_kind").and_then(Json::as_str).unwrap_or("panic");
        // Worker deaths carry the crash domain's index and exit status.
        let kind = match (rec.get("worker").and_then(Json::as_u64), rec.get("exit")) {
            (Some(worker), Some(exit)) => {
                format!("{kind}(w{worker}:{})", exit.as_str().unwrap_or("?"))
            }
            _ => kind.to_string(),
        };
        let error = rec.get("error").and_then(Json::as_str).unwrap_or("?");
        out.push_str(&format!("{name:<16} {attempts:>8}  {kind:<12}  {error}\n"));
    }
    out
}

/// Renders the memory-governor section: one row per governed workload,
/// plus a warning when any entity was dropped outright (its metrics are
/// missing from the profile, not just degraded).
fn governor_table(workloads: &[&Json]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>14} {:>10} {:>9} {:>12}\n",
        "governor", "peak bytes", "degraded", "dropped", "obs dropped"
    ));
    let mut entities_dropped = 0u64;
    for rec in workloads {
        let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
        let gov = rec.get("governor").expect("caller filtered on governor presence");
        let field = |key: &str| gov.get(key).and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "{:<16} {:>14} {:>10} {:>9} {:>12}\n",
            name,
            group_digits(field("bytes_peak")),
            group_digits(field("entities_degraded")),
            group_digits(field("entities_dropped")),
            group_digits(field("observations_dropped")),
        ));
        entities_dropped += field("entities_dropped");
    }
    if entities_dropped > 0 {
        out.push_str(&format!(
            "warning: {} entities dropped by the memory governor — their metrics are missing; raise the budget to recover them\n",
            group_digits(entities_dropped)
        ));
    }
    out
}

/// Renders the adaptive phase-detector section: one row per workload
/// profiled with phase detection armed, plus a note when any re-arm was
/// denied by an exhausted budget (later shifts of that instruction went
/// unprofiled).
fn adaptive_table(workloads: &[&Json]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>10} {:>8} {:>8} {:>8}\n",
        "adaptive", "windows", "shifts", "rearms", "denied"
    ));
    let mut denied = 0u64;
    for rec in workloads {
        let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
        let ph = rec.get("phase").expect("caller filtered on phase presence");
        let field = |key: &str| ph.get(key).and_then(Json::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "{:<16} {:>10} {:>8} {:>8} {:>8}\n",
            name,
            group_digits(field("windows")),
            group_digits(field("shifts_detected")),
            group_digits(field("rearms")),
            group_digits(field("rearms_denied")),
        ));
        denied += field("rearms_denied");
    }
    if denied > 0 {
        out.push_str(&format!(
            "note: {} re-arm(s) denied by an exhausted phase budget — later shifts of those instructions were not re-profiled\n",
            group_digits(denied)
        ));
    }
    out
}

/// Renders the optimize-pipeline section: one row per workload the
/// `vprof optimize` pipeline evaluated, plus a warning when any
/// specialized program failed the output-equivalence check (the guards
/// must make that impossible — a failure is a bug worth shouting about).
fn optimize_table(records: &[&Json]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>14} {:>14} {:>8} {:>6} {:>7}  {}\n",
        "optimize", "base instrs", "spec instrs", "reduct%", "sites", "hit%", "equivalent"
    ));
    let mut broken = 0u64;
    for rec in records {
        let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
        let base = rec.get("base_instructions").and_then(Json::as_u64).unwrap_or(0);
        let spec = rec.get("specialized_instructions").and_then(Json::as_u64).unwrap_or(0);
        let reduct = rec
            .get("reduction_pct")
            .and_then(Json::as_f64)
            .map(|f| format!("{f:.2}"))
            .unwrap_or_else(|| "-".to_string());
        let sites = rec.get("sites").and_then(Json::as_u64).unwrap_or(0);
        let hits = rec.get("guard_hits").and_then(Json::as_u64).unwrap_or(0);
        let misses = rec.get("guard_misses").and_then(Json::as_u64).unwrap_or(0);
        let hit_rate = if hits + misses > 0 {
            format!("{:.1}", hits as f64 / (hits + misses) as f64 * 100.0)
        } else {
            "-".to_string()
        };
        let equivalent = match rec.get("equivalent") {
            Some(Json::Bool(b)) => {
                if !*b {
                    broken += 1;
                }
                b.to_string()
            }
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<16} {:>14} {:>14} {:>8} {:>6} {:>7}  {}\n",
            name,
            group_digits(base),
            group_digits(spec),
            reduct,
            group_digits(sites),
            hit_rate,
            equivalent
        ));
    }
    if broken > 0 {
        out.push_str(&format!(
            "warning: {broken} specialized workload(s) diverged from the original output — guards failed to preserve behaviour\n"
        ));
    }
    out
}

/// Renders the `vprof serve` section: the daemon's exact admission and
/// checkpoint counters, then one row per session with its outcome.
/// Absent entirely unless a serve run emitted records, so telemetry from
/// every other tool renders exactly as before.
fn serve_section(serves: &[&Json], sessions: &[&Json]) -> String {
    let mut out = String::new();
    for rec in serves {
        let counts = rec.get("events").map(Counts::from_json).unwrap_or_default();
        out.push_str("serve:");
        for (id, value) in counts.iter_nonzero() {
            out.push_str(&format!("  {}={}", id.name(), value));
        }
        out.push('\n');
    }
    if !sessions.is_empty() {
        out.push_str(&format!(
            "{:<24} {:<12} {:<12} {:>8} {:>12}  detail\n",
            "session", "tenant", "outcome", "chunks", "events"
        ));
        for rec in sessions {
            let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
            let tenant = rec.get("tenant").and_then(Json::as_str).unwrap_or("?");
            let outcome = rec.get("outcome").and_then(Json::as_str).unwrap_or("?");
            let chunks = rec.get("chunks").and_then(Json::as_u64).unwrap_or(0);
            let events = rec.get("trace_events").and_then(Json::as_u64).unwrap_or(0);
            let detail = rec.get("error").and_then(Json::as_str).unwrap_or("-");
            out.push_str(&format!(
                "{:<24} {:<12} {:<12} {:>8} {:>12}  {}\n",
                name,
                tenant,
                outcome,
                group_digits(chunks),
                group_digits(events),
                detail
            ));
        }
    }
    out
}

fn run_header(rec: &Json) -> String {
    let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
    let mut line = format!("run: {name}");
    for key in ["tool", "mode", "jobs", "workloads", "reps"] {
        if let Some(value) = rec.get(key) {
            let shown = match value {
                Json::Str(s) => s.clone(),
                other => other.render(),
            };
            line.push_str(&format!("  {key}={shown}"));
        }
    }
    line.push('\n');
    if let Some(events) = rec.get("events") {
        let counts = Counts::from_json(events);
        line.push_str(&format!("  total events: {}\n", group_digits(counts.total())));
        for (id, value) in counts.iter_nonzero() {
            line.push_str(&format!("    {:<20} {:>16}\n", id.name(), group_digits(value)));
        }
        let mem_dropped = counts.get(CounterId::MemDropped);
        if mem_dropped > 0 {
            line.push_str(&format!(
                "  warning: {} stores dropped at the memory profiler's location cap — per-location results are incomplete\n",
                group_digits(mem_dropped)
            ));
        }
    }
    line
}

fn workload_table(workloads: &[&Json]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>12} {:>9} {:>10} {:>10}\n",
        "workload", "mode", "instrs", "events", "prof%", "wall ms", "Mev/s"
    ));
    for rec in workloads {
        let name = rec.get("name").and_then(Json::as_str).unwrap_or("?");
        let mode = rec.get("mode").and_then(Json::as_str).unwrap_or("-");
        let instrs = rec.get("instructions").and_then(Json::as_u64).unwrap_or(0);
        let events = rec.get("events").map(|e| Counts::from_json(e).total()).unwrap_or(0);
        let frac = rec
            .get("profile_fraction")
            .and_then(Json::as_f64)
            .map(|f| format!("{:.1}", f * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let wall_ns = rec.get("wall_ns").and_then(Json::as_u64);
        let rate = match wall_ns {
            Some(ns) if ns > 0 && events > 0 => {
                format!("{:.1}", events as f64 / ns as f64 * 1e3)
            }
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<16} {:>10} {:>12} {:>12} {:>9} {:>10} {:>10}\n",
            name,
            mode,
            group_digits(instrs),
            group_digits(events),
            frac,
            ms(rec.get("wall_ns")),
            rate
        ));
    }
    out
}

/// Formats a nanosecond field as milliseconds, or `-` when absent or
/// masked.
fn ms(value: Option<&Json>) -> String {
    match value.and_then(Json::as_u64) {
        Some(ns) => format!("{:.2}", ns as f64 / 1e6),
        None => "-".to_string(),
    }
}

/// `1234567` → `1,234,567`.
fn group_digits(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterId;
    use crate::telemetry::{record, to_jsonl};

    fn sample_jsonl() -> String {
        let mut counts = Counts::new();
        counts.add(CounterId::InstrEvents, 1_000_000);
        counts.add(CounterId::TnvHits, 900_000);
        let records = vec![
            record(
                "run",
                "profile-suite",
                vec![
                    ("jobs", Json::U64(4)),
                    ("mode", Json::Str("full".to_string())),
                    ("events", counts.to_json()),
                ],
            ),
            record(
                "workload",
                "loop_inv",
                vec![
                    ("mode", Json::Str("full".to_string())),
                    ("instructions", Json::U64(500_000)),
                    ("profile_fraction", Json::F64(1.0)),
                    ("wall_ns", Json::U64(2_000_000)),
                    ("events", counts.to_json()),
                ],
            ),
            record("phase", "replay", vec![("phase_ns", Json::U64(3_500_000))]),
        ];
        to_jsonl(&records)
    }

    #[test]
    fn summary_includes_run_workloads_and_phases() {
        let text = summarize(&sample_jsonl()).unwrap();
        assert!(text.contains("run: profile-suite"), "{text}");
        assert!(text.contains("jobs=4"), "{text}");
        assert!(text.contains("instr_events"), "{text}");
        assert!(text.contains("loop_inv"), "{text}");
        assert!(text.contains("replay"), "{text}");
        assert!(text.contains("3.50"), "{text}");
    }

    #[test]
    fn masked_wall_times_render_as_dash() {
        let masked: String = crate::telemetry::parse_jsonl(&sample_jsonl())
            .unwrap()
            .iter()
            .map(|r| crate::telemetry::mask_volatile(r).render() + "\n")
            .collect();
        let text = summarize(&masked).unwrap();
        assert!(text.contains(" -"), "{text}");
    }

    #[test]
    fn faults_and_failures_render() {
        let mut counts = Counts::new();
        counts.add(CounterId::WorkloadPanic, 3);
        counts.add(CounterId::WorkloadRetry, 2);
        counts.add(CounterId::WorkloadQuarantined, 1);
        let records = vec![
            record("run", "profile-suite", vec![("jobs", Json::U64(1))]),
            record("faults", "profile-suite", vec![("events", counts.to_json())]),
            record(
                "failure",
                "gcc",
                vec![
                    ("attempts", Json::U64(3)),
                    ("error", Json::Str("fault injected: workload/gcc".to_string())),
                ],
            ),
        ];
        let text = summarize_records(&records).unwrap();
        assert!(text.contains("workload_panics=3"), "{text}");
        assert!(text.contains("workload_retries=2"), "{text}");
        assert!(text.contains("gcc"), "{text}");
        assert!(text.contains("fault injected: workload/gcc"), "{text}");
        assert!(!text.contains("unknown kind"), "{text}");
    }

    #[test]
    fn governor_section_and_timeout_kind_render() {
        let mut counts = Counts::new();
        counts.add(CounterId::WorkloadTimeout, 1);
        counts.add(CounterId::MemDropped, 7);
        let records = vec![
            record(
                "run",
                "profile-suite",
                vec![("jobs", Json::U64(1)), ("events", counts.to_json())],
            ),
            record(
                "workload",
                "gcc",
                vec![
                    ("instructions", Json::U64(10)),
                    (
                        "governor",
                        Json::obj(vec![
                            ("bytes_peak", Json::U64(65_536)),
                            ("entities_degraded", Json::U64(4)),
                            ("entities_dropped", Json::U64(1)),
                            ("observations_dropped", Json::U64(2_000)),
                        ]),
                    ),
                ],
            ),
            record("faults", "profile-suite", vec![("events", counts.to_json())]),
            record(
                "failure",
                "li",
                vec![
                    ("attempts", Json::U64(1)),
                    ("failure_kind", Json::Str("timeout".to_string())),
                    ("error", Json::Str("deadline exceeded".to_string())),
                ],
            ),
        ];
        let text = summarize_records(&records).unwrap();
        assert!(text.contains("workload_timeouts=1"), "{text}");
        assert!(text.contains("governor"), "{text}");
        assert!(text.contains("65,536"), "{text}");
        assert!(text.contains("entities dropped by the memory governor"), "{text}");
        assert!(text.contains("stores dropped at the memory profiler's location cap"), "{text}");
        // The table row itself carries the timeout classification — a
        // bare substring would also match "workload_timeouts" above.
        assert!(text.contains("  timeout       deadline exceeded"), "{text}");
    }

    #[test]
    fn failure_table_renders_worker_death_with_exit_status() {
        let records = vec![
            record("run", "profile-suite", vec![("jobs", Json::U64(2))]),
            record(
                "failure",
                "gcc",
                vec![
                    ("attempts", Json::U64(1)),
                    ("failure_kind", Json::Str("worker-death".to_string())),
                    ("worker", Json::U64(0)),
                    ("exit", Json::Str("signal 9".to_string())),
                    ("error", Json::Str("worker 0 died (signal 9): torn frame".to_string())),
                ],
            ),
        ];
        let text = summarize_records(&records).unwrap();
        assert!(
            text.contains("worker-death(w0:signal 9)  worker 0 died (signal 9): torn frame"),
            "{text}"
        );
    }

    #[test]
    fn ungoverned_records_render_without_governor_section() {
        let text = summarize(&sample_jsonl()).unwrap();
        assert!(!text.contains("governor"), "{text}");
        assert!(!text.contains("warning"), "{text}");
    }

    #[test]
    fn adaptive_section_renders_phase_counters() {
        let records = vec![
            record("run", "profile-suite", vec![("jobs", Json::U64(1))]),
            record(
                "workload",
                "gcc",
                vec![
                    ("instructions", Json::U64(10)),
                    (
                        "phase",
                        Json::obj(vec![
                            ("windows", Json::U64(1_234)),
                            ("shifts_detected", Json::U64(17)),
                            ("rearms", Json::U64(5)),
                            ("rearms_denied", Json::U64(2)),
                        ]),
                    ),
                ],
            ),
        ];
        let text = summarize_records(&records).unwrap();
        assert!(text.contains("adaptive"), "{text}");
        assert!(text.contains("1,234"), "{text}");
        assert!(text.contains("re-arm(s) denied by an exhausted phase budget"), "{text}");
    }

    #[test]
    fn non_adaptive_records_render_without_adaptive_section() {
        let text = summarize(&sample_jsonl()).unwrap();
        assert!(!text.contains("adaptive"), "{text}");
        assert!(!text.contains("rearms"), "{text}");
    }

    #[test]
    fn optimize_section_renders_reduction_and_guard_rates() {
        let records = vec![
            record("run", "optimize", vec![("jobs", Json::U64(1))]),
            record(
                "optimize",
                "m88ksim",
                vec![
                    ("base_instructions", Json::U64(120_000)),
                    ("specialized_instructions", Json::U64(90_000)),
                    ("reduction_pct", Json::F64(25.0)),
                    ("equivalent", Json::Bool(true)),
                    ("sites", Json::U64(2)),
                    ("guard_hits", Json::U64(1_900)),
                    ("guard_misses", Json::U64(100)),
                ],
            ),
            record(
                "optimize",
                "gcc",
                vec![
                    ("base_instructions", Json::U64(50_000)),
                    ("specialized_instructions", Json::U64(50_000)),
                    ("equivalent", Json::Bool(false)),
                    ("sites", Json::U64(0)),
                ],
            ),
        ];
        let text = summarize_records(&records).unwrap();
        assert!(text.contains("optimize"), "{text}");
        assert!(text.contains("m88ksim"), "{text}");
        assert!(text.contains("25.00"), "{text}");
        assert!(text.contains("95.0"), "{text}");
        assert!(text.contains("true"), "{text}");
        assert!(text.contains("diverged from the original output"), "{text}");
        assert!(!text.contains("unknown kind"), "{text}");
    }

    #[test]
    fn non_optimize_records_render_without_optimize_section() {
        let text = summarize(&sample_jsonl()).unwrap();
        assert!(!text.contains("optimize"), "{text}");
    }

    #[test]
    fn serve_section_renders_counters_and_sessions() {
        let mut counts = Counts::new();
        counts.add(CounterId::SessionRejected, 4);
        counts.add(CounterId::SessionKilled, 1);
        counts.add(CounterId::SessionCompleted, 2);
        counts.add(CounterId::ChunksAcked, 37);
        let records = vec![
            record("serve", "daemon", vec![("events", counts.to_json())]),
            record(
                "session",
                "acme/li",
                vec![
                    ("tenant", Json::Str("acme".to_string())),
                    ("outcome", Json::Str("completed".to_string())),
                    ("chunks", Json::U64(19)),
                    ("trace_events", Json::U64(151_000)),
                ],
            ),
            record(
                "session",
                "evil/gcc",
                vec![
                    ("tenant", Json::Str("evil".to_string())),
                    ("outcome", Json::Str("killed".to_string())),
                    ("chunks", Json::U64(3)),
                    ("trace_events", Json::U64(24_576)),
                    ("error", Json::Str("chunk 4 crc mismatch".to_string())),
                ],
            ),
        ];
        let text = summarize_records(&records).unwrap();
        assert!(text.contains("serve:  session_rejected=4"), "{text}");
        assert!(text.contains("chunks_acked=37"), "{text}");
        assert!(text.contains("acme/li"), "{text}");
        assert!(text.contains("completed"), "{text}");
        assert!(text.contains("chunk 4 crc mismatch"), "{text}");
        assert!(text.contains("151,000"), "{text}");
        assert!(!text.contains("unknown kind"), "{text}");
    }

    #[test]
    fn non_serve_records_render_without_serve_section() {
        let text = summarize(&sample_jsonl()).unwrap();
        assert!(!text.contains("serve:"), "{text}");
        assert!(!text.contains("tenant"), "{text}");
    }

    #[test]
    fn unknown_kinds_are_tolerated() {
        let mut jsonl = sample_jsonl();
        jsonl.push_str("{\"schema\":1,\"kind\":\"mystery\",\"name\":\"x\"}\n");
        let text = summarize(&jsonl).unwrap();
        assert!(text.contains("1 record(s) of unknown kind ignored"), "{text}");
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(summarize("").is_err());
        assert!(summarize("not json\n").is_err());
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }
}
