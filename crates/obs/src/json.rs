//! A minimal, dependency-free JSON value with *ordered* objects.
//!
//! Telemetry records must serialize to identical bytes for identical
//! data — that is what makes them golden-testable and lets the
//! determinism test compare jobs=1 against jobs=4 byte-for-byte — so
//! objects preserve insertion order instead of hashing.

use std::fmt::Write as _;

/// A JSON value. Objects are ordered key/value vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Unsigned integer view (also accepts non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Float view of any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => render_f64(*v, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Integers without sign or fraction parse as
    /// `U64`, negative integers as `I64`, everything else numeric as `F64`.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Keep a fractional part so the value re-parses as F64.
            let _ = write!(out, "{v:.1}");
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if !fractional {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|e| format!("bad number `{text}`: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_objects() {
        let j = Json::obj(vec![
            ("b", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(true), Json::F64(1.5)])),
        ]);
        assert_eq!(j.render(), r#"{"b":1,"a":[null,true,1.5]}"#);
    }

    #[test]
    fn round_trips() {
        let text = r#"{"name":"loop \"x\"","n":42,"neg":-7,"f":3.25,"arr":[1,2],"obj":{}}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("neg").unwrap().as_f64(), Some(-7.0));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some(r#"loop "x""#));
    }

    #[test]
    fn whole_floats_keep_fraction() {
        assert_eq!(Json::F64(2.0).render(), "2.0");
        let back = Json::parse("2.0").unwrap();
        assert_eq!(back, Json::F64(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let j = Json::Str("a\nb\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\nb\\u0001\"");
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }
}
