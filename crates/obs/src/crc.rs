//! CRC32 (IEEE 802.3, reflected), table-driven — no dependencies.
//!
//! One checksum implementation serves every integrity footer in the
//! workspace: the durable profile files in `vp-core` and the binary
//! trace chunks in `vp-instrument` (which sits *below* `vp-core` in the
//! dependency order, so the shared code lives here at the bottom).
//!
//! Two entry points: the one-shot [`crc32`] and the streaming [`Crc32`]
//! hasher, which lets callers checksum several regions (a chunk header
//! followed by its payload, say) without concatenating them first. Both
//! run the same slicing-by-8 kernel — eight bytes per table round — so
//! checksum verification stays off the replay-path flame graph.

/// Slicing-by-8 lookup tables. `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[k][i]` extends the remainder of `TABLES[k-1][i]` by one
/// more zero byte, letting eight input bytes fold in one round.
const TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// Advances the raw (pre-inversion) CRC state over `bytes`.
fn update_state(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for w in &mut chunks {
        crc ^= u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
        crc = TABLES[7][(crc & 0xFF) as usize]
            ^ TABLES[6][((crc >> 8) & 0xFF) as usize]
            ^ TABLES[5][((crc >> 16) & 0xFF) as usize]
            ^ TABLES[4][(crc >> 24) as usize]
            ^ TABLES[3][w[4] as usize]
            ^ TABLES[2][w[5] as usize]
            ^ TABLES[1][w[6] as usize]
            ^ TABLES[0][w[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    !update_state(!0, bytes)
}

/// Streaming CRC32: `update` over any sequence of slices yields the same
/// checksum as [`crc32`] over their concatenation.
///
/// ```
/// use vp_obs::crc::{crc32, Crc32};
///
/// let mut crc = Crc32::new();
/// crc.update(b"value ");
/// crc.update(b"profiling");
/// assert_eq!(crc.finish(), crc32(b"value profiling"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher (empty input hashes to 0).
    pub const fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update_state(self.state, bytes);
    }

    /// The checksum of everything updated so far. Non-destructive: more
    /// `update` calls may follow.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_any_bit() {
        let base = crc32(b"value profiling");
        let mut bytes = b"value profiling".to_vec();
        bytes[3] ^= 0x10;
        assert_ne!(crc32(&bytes), base);
    }

    #[test]
    fn sliced_kernel_matches_byte_at_a_time_reference() {
        // Lengths straddling the 8-byte fold boundary, content chosen so
        // every table index fires.
        let data: Vec<u8> = (0u32..1024).map(|i| (i.wrapping_mul(251) >> 3) as u8).collect();
        for len in [0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 255, 1024] {
            let mut reference = !0u32;
            for &b in &data[..len] {
                reference = (reference >> 8) ^ TABLES[0][((reference ^ b as u32) & 0xFF) as usize];
            }
            assert_eq!(crc32(&data[..len]), !reference, "len={len}");
        }
    }

    #[test]
    fn streaming_equals_one_shot_at_every_split() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 7 + 13) as u8).collect();
        let expect = crc32(&data);
        for split in [0, 1, 3, 8, 9, 150, 299, 300] {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), expect, "split={split}");
        }
    }
}
