//! CRC32 (IEEE 802.3, reflected), table-driven — no dependencies.
//!
//! One checksum implementation serves every integrity footer in the
//! workspace: the durable profile files in `vp-core` and the binary
//! trace chunks in `vp-instrument` (which sits *below* `vp-core` in the
//! dependency order, so the shared code lives here at the bottom).

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sensitive_to_any_bit() {
        let base = crc32(b"value profiling");
        let mut bytes = b"value profiling".to_vec();
        bytes[3] ^= 0x10;
        assert_ne!(crc32(&bytes), base);
    }
}
