//! Property tests for the log2 histogram: no sample is ever lost, merging
//! shard histograms equals histogramming the whole stream, and quantile
//! estimates are bounded by the edges of the bucket they land in.

use proptest::prelude::*;
use vp_obs::Log2Histogram;

/// Sample streams mixing small values (dense low buckets) with arbitrary
/// magnitudes (exercising high buckets and the u64::MAX edge).
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![3 => 0u64..64, 2 => 0u64..1_000_000, 1 => any::<u64>()],
        1..300,
    )
}

proptest! {
    /// Every recorded sample lands in exactly one bucket: bucket totals,
    /// the count, min, max and the saturating sum all account for the
    /// full stream.
    #[test]
    fn no_sample_is_lost(samples in arb_samples()) {
        let mut h = Log2Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let bucket_total: u64 = h.buckets().iter().sum();
        prop_assert_eq!(bucket_total, samples.len() as u64);
        prop_assert_eq!(h.min(), samples.iter().copied().min());
        prop_assert_eq!(h.max(), samples.iter().copied().max());
        let expect_sum =
            samples.iter().fold(0u64, |acc, &s| acc.saturating_add(s));
        prop_assert_eq!(h.sum(), expect_sum);
    }

    /// Each sample's bucket covers the sample's value.
    #[test]
    fn bucket_contains_its_sample(value in any::<u64>()) {
        let bucket = Log2Histogram::bucket_of(value);
        let (lo, hi) = Log2Histogram::bucket_range(bucket);
        prop_assert!(lo <= value && value <= hi);
    }

    /// Merging per-shard histograms equals the histogram of the combined
    /// stream, wherever the stream is cut and however many shards.
    #[test]
    fn shard_merge_equals_single(samples in arb_samples(), cuts in prop::collection::vec(any::<u16>(), 0..4)) {
        let mut whole = Log2Histogram::new();
        for &s in &samples {
            whole.record(s);
        }

        let mut bounds: Vec<usize> =
            cuts.iter().map(|&c| usize::from(c) % (samples.len() + 1)).collect();
        bounds.push(0);
        bounds.push(samples.len());
        bounds.sort_unstable();

        let mut merged = Log2Histogram::new();
        for pair in bounds.windows(2) {
            let mut shard = Log2Histogram::new();
            for &s in &samples[pair[0]..pair[1]] {
                shard.record(s);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(merged, whole);
    }

    /// The quantile bounds bracket the true (nearest-rank) sample
    /// quantile, and the bracket is itself within the bucket the quantile
    /// falls into.
    #[test]
    fn quantile_bounds_bracket_truth(samples in arb_samples(), qs in prop::collection::vec(0u8..=100, 1..5)) {
        let mut h = Log2Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &pct in &qs {
            let q = f64::from(pct) / 100.0;
            if q == 0.0 {
                continue;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let (lo, hi) = h.quantile_bounds(q).expect("non-empty histogram");
            prop_assert!(lo <= truth && truth <= hi,
                "q={q}: true quantile {truth} outside [{lo}, {hi}]");
            let bucket = Log2Histogram::bucket_of(truth);
            let (b_lo, b_hi) = Log2Histogram::bucket_range(bucket);
            prop_assert!(b_lo <= lo && hi <= b_hi,
                "bounds [{lo}, {hi}] exceed bucket [{b_lo}, {b_hi}]");
        }
    }
}
