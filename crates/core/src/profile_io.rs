//! Profile persistence: save and load [`EntityMetrics`] as a
//! tab-separated text format.
//!
//! The paper's workflow is *profile once, optimize later*: the value
//! profile gathered on a training run is consumed by a compiler (or our
//! specializer) in a separate process. This module provides the on-disk
//! profile format — human-readable TSV with a header line, one row per
//! entity.

use std::fmt;

use crate::metrics::EntityMetrics;

const HEADER: &str =
    "id\texecutions\tlvp\tinv_top1\tinv_topn\tinv_all1\tinv_alln\tpct_zero\tdistinct\ttop_value";

/// Error when parsing a profile file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileError {
    /// 1-based line of the problem (0 = structural, e.g. missing header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "profile parse error: {}", self.message)
        } else {
            write!(f, "profile parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseProfileError {}

fn opt_f64(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.9}"))
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| x.to_string())
}

/// Serializes metrics to the TSV profile format.
///
/// ```
/// use vp_core::profile_io::{parse_profile, render_profile};
/// # use vp_core::EntityMetrics;
/// let metrics = vec![EntityMetrics {
///     id: 4, executions: 100, lvp: 0.5, inv_top1: 0.9, inv_topn: 1.0,
///     inv_all1: Some(0.9), inv_alln: Some(1.0), pct_zero: 0.0,
///     distinct: Some(2), top_value: Some(7),
/// }];
/// let text = render_profile(&metrics);
/// assert_eq!(parse_profile(&text).unwrap(), metrics);
/// ```
pub fn render_profile(metrics: &[EntityMetrics]) -> String {
    let mut out = String::with_capacity(64 * (metrics.len() + 1));
    out.push_str(HEADER);
    out.push('\n');
    for m in metrics {
        out.push_str(&format!(
            "{}\t{}\t{:.9}\t{:.9}\t{:.9}\t{}\t{}\t{:.9}\t{}\t{}\n",
            m.id,
            m.executions,
            m.lvp,
            m.inv_top1,
            m.inv_topn,
            opt_f64(m.inv_all1),
            opt_f64(m.inv_alln),
            m.pct_zero,
            opt_u64(m.distinct),
            opt_u64(m.top_value),
        ));
    }
    out
}

fn parse_opt_f64(field: &str, line: usize) -> Result<Option<f64>, ParseProfileError> {
    if field == "-" {
        return Ok(None);
    }
    field
        .parse()
        .map(Some)
        .map_err(|_| ParseProfileError { line, message: format!("bad float `{field}`") })
}

fn parse_opt_u64(field: &str, line: usize) -> Result<Option<u64>, ParseProfileError> {
    if field == "-" {
        return Ok(None);
    }
    field
        .parse()
        .map(Some)
        .map_err(|_| ParseProfileError { line, message: format!("bad integer `{field}`") })
}

/// Parses one data row of the TSV profile format. `line` is the 1-based
/// line number used in error messages.
pub(crate) fn parse_row(raw: &str, line: usize) -> Result<EntityMetrics, ParseProfileError> {
    let fields: Vec<&str> = raw.split('\t').collect();
    if fields.len() != 10 {
        return Err(ParseProfileError {
            line,
            message: format!("expected 10 columns, got {}", fields.len()),
        });
    }
    let num = |f: &str| -> Result<u64, ParseProfileError> {
        f.parse().map_err(|_| ParseProfileError { line, message: format!("bad integer `{f}`") })
    };
    let fnum = |f: &str| -> Result<f64, ParseProfileError> {
        f.parse().map_err(|_| ParseProfileError { line, message: format!("bad float `{f}`") })
    };
    Ok(EntityMetrics {
        id: num(fields[0])?,
        executions: num(fields[1])?,
        lvp: fnum(fields[2])?,
        inv_top1: fnum(fields[3])?,
        inv_topn: fnum(fields[4])?,
        inv_all1: parse_opt_f64(fields[5], line)?,
        inv_alln: parse_opt_f64(fields[6], line)?,
        pct_zero: fnum(fields[7])?,
        distinct: parse_opt_u64(fields[8], line)?,
        top_value: parse_opt_u64(fields[9], line)?,
    })
}

/// Whether a profile line carries no data: blank, or a `#` comment (the
/// durable layer's integrity footer is such a comment).
pub(crate) fn is_skippable(raw: &str) -> bool {
    let trimmed = raw.trim();
    trimmed.is_empty() || trimmed.starts_with('#')
}

/// Checks `text` starts with the profile header and returns the remaining
/// lines iterator, 1-based line numbers attached.
pub(crate) fn check_header(
    text: &str,
) -> Result<impl Iterator<Item = (usize, &str)>, ParseProfileError> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h.trim_end() == HEADER => {}
        _ => {
            return Err(ParseProfileError {
                line: 0,
                message: "missing or unknown profile header".to_string(),
            })
        }
    }
    Ok(lines.enumerate().map(|(i, raw)| (i + 2, raw)))
}

/// Parses the TSV profile format back into metrics. Blank lines and `#`
/// comments (e.g. the durable integrity footer) are skipped. The footer,
/// when present, is *not* verified here — use
/// [`durable::parse_profile_checked`](crate::durable::parse_profile_checked)
/// for integrity-checked loads.
///
/// # Errors
///
/// Returns a [`ParseProfileError`] on a missing/unknown header, wrong
/// column counts, malformed fields or a duplicate entity id (later rows
/// would silently overwrite earlier metrics downstream); parsing never
/// panics.
pub fn parse_profile(text: &str) -> Result<Vec<EntityMetrics>, ParseProfileError> {
    let mut out: Vec<EntityMetrics> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (line, raw) in check_header(text)? {
        if is_skippable(raw) {
            continue;
        }
        let m = parse_row(raw, line)?;
        if !seen.insert(m.id) {
            return Err(ParseProfileError {
                line,
                message: format!("duplicate entity id {}", m.id),
            });
        }
        out.push(m);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<EntityMetrics> {
        vec![
            EntityMetrics {
                id: 3,
                executions: 1000,
                lvp: 0.125,
                inv_top1: 0.5,
                inv_topn: 0.75,
                inv_all1: Some(0.5),
                inv_alln: Some(1.0),
                pct_zero: 0.0625,
                distinct: Some(17),
                top_value: Some(u64::MAX),
            },
            EntityMetrics {
                id: 9,
                executions: 1,
                lvp: 0.0,
                inv_top1: 1.0,
                inv_topn: 1.0,
                inv_all1: None,
                inv_alln: None,
                pct_zero: 1.0,
                distinct: None,
                top_value: None,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let metrics = sample();
        let text = render_profile(&metrics);
        assert_eq!(parse_profile(&text).unwrap(), metrics);
    }

    #[test]
    fn round_trip_through_profiler() {
        use crate::instr_profile::InstructionProfiler;
        use crate::track::TrackerConfig;
        use vp_instrument::{Instrumenter, Selection};
        let program = vp_asm::assemble(
            ".data\nx: .quad 5\n.text\nmain: la r8, x\n ldd r2, 0(r8)\n sys exit\n",
        )
        .unwrap();
        let mut p = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(&program, vp_sim::MachineConfig::new(), 1000, &mut p)
            .unwrap();
        let text = render_profile(&p.metrics());
        assert_eq!(parse_profile(&text).unwrap(), p.metrics());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_profile("").is_err());
        assert!(parse_profile("wrong header\n").is_err());
        let good = render_profile(&sample());
        let mut broken = good.replace("1000", "banana");
        assert!(parse_profile(&broken).is_err());
        broken = good.lines().next().unwrap().to_string() + "\n1\t2\n";
        let err = parse_profile(&broken).unwrap_err();
        assert!(err.message.contains("10 columns"), "{err}");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = render_profile(&sample()) + "\n\n";
        assert_eq!(parse_profile(&text).unwrap().len(), 2);
    }

    #[test]
    fn comment_lines_are_skipped() {
        let text = render_profile(&sample()) + "# trailing comment\n";
        assert_eq!(parse_profile(&text).unwrap(), sample());
    }

    #[test]
    fn duplicate_ids_are_rejected_with_the_offending_line() {
        let mut metrics = sample();
        metrics.push(metrics[0].clone());
        let err = parse_profile(&render_profile(&metrics)).unwrap_err();
        assert!(err.message.contains("duplicate entity id 3"), "{err}");
        assert_eq!(err.line, 4);
    }
}
