//! Derived metrics and program-level aggregation.
//!
//! The paper reports, per benchmark: `LVP`, `Inv-Top` (TNV-estimated
//! invariance), `Inv-All` (exact invariance), `% zero` and `Diff (L/I)`
//! (distinct values per dynamic execution), each aggregated over all
//! profiled entities *weighted by execution frequency*; plus
//! execution-weighted invariance histograms (the figures).

use crate::track::ValueTracker;

/// Metric snapshot of one profiled entity (instruction, memory location or
/// procedure parameter slot).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityMetrics {
    /// Entity identifier (instruction index, address, or parameter id).
    pub id: u64,
    /// Dynamic executions observed.
    pub executions: u64,
    /// Last-value predictability.
    pub lvp: f64,
    /// TNV-estimated invariance of the single most frequent value.
    pub inv_top1: f64,
    /// TNV-estimated invariance over the whole table (top N).
    pub inv_topn: f64,
    /// Exact invariance of the most frequent value (needs the full profile).
    pub inv_all1: Option<f64>,
    /// Exact invariance over the top N values (needs the full profile).
    pub inv_alln: Option<f64>,
    /// Fraction of executions producing zero.
    pub pct_zero: f64,
    /// Distinct values produced (needs the full profile).
    pub distinct: Option<u64>,
    /// Most frequent resident value in the TNV table.
    pub top_value: Option<u64>,
}

impl EntityMetrics {
    /// Extracts metrics from a tracker. `n` is the TNV width used for the
    /// `*_topn`/`*_alln` metrics (the paper uses the table capacity).
    pub fn from_tracker(id: u64, tracker: &ValueTracker, n: usize) -> EntityMetrics {
        EntityMetrics {
            id,
            executions: tracker.executions(),
            lvp: tracker.lvp(),
            inv_top1: tracker.inv_top(1),
            inv_topn: tracker.inv_top(n),
            inv_all1: tracker.inv_all(1),
            inv_alln: tracker.inv_all(n),
            pct_zero: tracker.pct_zero(),
            distinct: tracker.distinct(),
            top_value: tracker.tnv().top_value(),
        }
    }
}

/// Execution-weighted aggregate over a set of entities: one benchmark row
/// of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Aggregate {
    /// Number of entities with at least one execution.
    pub entities: usize,
    /// Total dynamic executions across entities.
    pub executions: u64,
    /// Weighted mean LVP.
    pub lvp: f64,
    /// Weighted mean Inv-Top(1).
    pub inv_top1: f64,
    /// Weighted mean Inv-Top(N).
    pub inv_topn: f64,
    /// Weighted mean Inv-All(1) over entities that have it.
    pub inv_all1: Option<f64>,
    /// Weighted mean Inv-All(N) over entities that have it.
    pub inv_alln: Option<f64>,
    /// Weighted mean fraction of zero values.
    pub pct_zero: f64,
    /// `Diff (L/I)`: total distinct values / total executions, when full
    /// profiles were kept.
    pub diff_ratio: Option<f64>,
}

/// Aggregates entity metrics, weighting every per-entity ratio by that
/// entity's execution count (the paper's convention).
pub fn aggregate(metrics: &[EntityMetrics]) -> Aggregate {
    let live: Vec<&EntityMetrics> = metrics.iter().filter(|m| m.executions > 0).collect();
    let total: u64 = live.iter().map(|m| m.executions).sum();
    if total == 0 {
        return Aggregate::default();
    }
    let w = |f: &dyn Fn(&EntityMetrics) -> f64| -> f64 {
        live.iter().map(|m| f(m) * m.executions as f64).sum::<f64>() / total as f64
    };
    // Weighted mean over the entities that have the metric: entities
    // profiled without a full histogram are skipped, not fatal. `None`
    // only when no live entity has it.
    let opt_w = |f: &dyn Fn(&EntityMetrics) -> Option<f64>| -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0u64;
        for m in &live {
            if let Some(v) = f(m) {
                num += v * m.executions as f64;
                den += m.executions;
            }
        }
        (den > 0).then(|| num / den as f64)
    };
    let diff_ratio = {
        let mut distinct = 0u64;
        let mut any = true;
        for m in &live {
            match m.distinct {
                Some(d) => distinct += d,
                None => {
                    any = false;
                    break;
                }
            }
        }
        (any && total > 0).then(|| distinct as f64 / total as f64)
    };
    Aggregate {
        entities: live.len(),
        executions: total,
        lvp: w(&|m| m.lvp),
        inv_top1: w(&|m| m.inv_top1),
        inv_topn: w(&|m| m.inv_topn),
        inv_all1: opt_w(&|m| m.inv_all1),
        inv_alln: opt_w(&|m| m.inv_alln),
        pct_zero: w(&|m| m.pct_zero),
        diff_ratio,
    }
}

/// Merges two metric collections keyed by entity id, for combining
/// per-shard *snapshots* when the underlying trackers are gone.
///
/// Entities present in only one input pass through unchanged. For shared
/// ids, `executions` sum and every ratio becomes the execution-weighted
/// mean of the inputs. That is exact for `pct_zero`, but only an
/// approximation for the invariance metrics and `lvp` (each shard's top
/// value may differ, and the shard-boundary LVP hit is unobservable here)
/// — merge the trackers or profilers themselves when exactness matters.
/// `inv_all*` survive only when both sides have them; `distinct` becomes
/// an **upper bound** (shards may share values); `top_value` follows the
/// side with more executions.
pub fn merge_entity_metrics(a: &[EntityMetrics], b: &[EntityMetrics]) -> Vec<EntityMetrics> {
    let mut by_id: std::collections::HashMap<u64, EntityMetrics> =
        a.iter().map(|m| (m.id, m.clone())).collect();
    for m in b {
        match by_id.entry(m.id) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(m.clone());
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let mine = e.get_mut();
                let total = mine.executions + m.executions;
                let wmean = |x: f64, y: f64| {
                    if total == 0 {
                        0.0
                    } else {
                        (x * mine.executions as f64 + y * m.executions as f64) / total as f64
                    }
                };
                let opt_wmean = |x: Option<f64>, y: Option<f64>| Some(wmean(x?, y?));
                mine.lvp = wmean(mine.lvp, m.lvp);
                mine.inv_top1 = wmean(mine.inv_top1, m.inv_top1);
                mine.inv_topn = wmean(mine.inv_topn, m.inv_topn);
                mine.inv_all1 = opt_wmean(mine.inv_all1, m.inv_all1);
                mine.inv_alln = opt_wmean(mine.inv_alln, m.inv_alln);
                mine.pct_zero = wmean(mine.pct_zero, m.pct_zero);
                mine.distinct = match (mine.distinct, m.distinct) {
                    (Some(x), Some(y)) => Some(x + y),
                    _ => None,
                };
                if m.executions > mine.executions {
                    mine.top_value = m.top_value;
                }
                mine.executions = total;
            }
        }
    }
    let mut out: Vec<EntityMetrics> = by_id.into_values().collect();
    out.sort_by_key(|m| m.id);
    out
}

/// An execution-weighted histogram over 10 invariance buckets
/// (0–10%, …, 90–100%): the data behind the paper's invariance-distribution
/// figures. `key` selects the bucketed metric (e.g. `|m| m.inv_top1`).
///
/// The returned weights sum to 1 (when any executions exist).
pub fn invariance_histogram<F>(metrics: &[EntityMetrics], key: F) -> [f64; 10]
where
    F: Fn(&EntityMetrics) -> f64,
{
    let mut buckets = [0.0f64; 10];
    let total: u64 = metrics.iter().map(|m| m.executions).sum();
    if total == 0 {
        return buckets;
    }
    for m in metrics {
        if m.executions == 0 {
            continue;
        }
        let v = key(m).clamp(0.0, 1.0);
        let idx = ((v * 10.0) as usize).min(9);
        buckets[idx] += m.executions as f64 / total as f64;
    }
    buckets
}

/// Pearson correlation coefficient between two equally long metric series
/// (used for the train-vs-test stability experiment E8). Returns 0 for
/// degenerate inputs (length < 2 or zero variance).
pub fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlation needs equal-length series");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::TrackerConfig;

    fn entity(id: u64, executions: u64, inv: f64, lvp: f64) -> EntityMetrics {
        EntityMetrics {
            id,
            executions,
            lvp,
            inv_top1: inv,
            inv_topn: inv,
            inv_all1: Some(inv),
            inv_alln: Some(inv),
            pct_zero: 0.0,
            distinct: Some(2),
            top_value: Some(0),
        }
    }

    #[test]
    fn aggregate_weighting() {
        // 90 executions at invariance 1.0, 10 at invariance 0.0.
        let ms = vec![entity(0, 90, 1.0, 1.0), entity(1, 10, 0.0, 0.0)];
        let a = aggregate(&ms);
        assert!((a.inv_top1 - 0.9).abs() < 1e-12);
        assert!((a.lvp - 0.9).abs() < 1e-12);
        assert_eq!(a.executions, 100);
        assert_eq!(a.entities, 2);
        assert_eq!(a.diff_ratio, Some(4.0 / 100.0));
    }

    #[test]
    fn aggregate_skips_dead_entities() {
        let ms = vec![entity(0, 0, 0.3, 0.3), entity(1, 10, 1.0, 1.0)];
        let a = aggregate(&ms);
        assert_eq!(a.entities, 1);
        assert!((a.inv_top1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_empty() {
        assert_eq!(aggregate(&[]), Aggregate::default());
    }

    #[test]
    fn aggregate_without_full_profiles() {
        let mut m = entity(0, 10, 0.5, 0.5);
        m.inv_all1 = None;
        m.inv_alln = None;
        m.distinct = None;
        let a = aggregate(&[m]);
        assert_eq!(a.inv_all1, None);
        assert_eq!(a.diff_ratio, None);
    }

    #[test]
    fn aggregate_mixes_full_and_tnv_only_entities() {
        // Regression: one TNV-only entity must not erase Inv-All for the
        // whole aggregate — the weighted mean runs over the entities that
        // have it (here: only entity 0, at invariance 0.8).
        let full = entity(0, 60, 0.8, 0.5);
        let mut tnv_only = entity(1, 40, 0.4, 0.5);
        tnv_only.inv_all1 = None;
        tnv_only.inv_alln = None;
        tnv_only.distinct = None;
        let a = aggregate(&[full, tnv_only]);
        assert_eq!(a.entities, 2);
        let inv_all1 = a.inv_all1.expect("full-profile entity still contributes");
        assert!((inv_all1 - 0.8).abs() < 1e-12, "inv_all1 {inv_all1}");
        assert_eq!(a.inv_alln, Some(0.8));
        // Inv-Top spans both entities: (0.8*60 + 0.4*40) / 100.
        assert!((a.inv_top1 - 0.64).abs() < 1e-12);
        // diff_ratio stays all-or-nothing: a partial distinct sum over the
        // full execution total would understate Diff.
        assert_eq!(a.diff_ratio, None);
    }

    #[test]
    fn merge_entity_metrics_weights_shared_ids() {
        let a = vec![entity(0, 30, 1.0, 1.0), entity(1, 10, 0.5, 0.5)];
        let b = vec![entity(1, 30, 0.9, 0.1), entity(2, 5, 0.2, 0.2)];
        let merged = merge_entity_metrics(&a, &b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0], a[0]);
        assert_eq!(merged[2], b[1]);
        let shared = &merged[1];
        assert_eq!(shared.executions, 40);
        assert!((shared.inv_top1 - 0.8).abs() < 1e-12); // (0.5*10 + 0.9*30)/40
        assert!((shared.lvp - 0.2).abs() < 1e-12);
        assert_eq!(shared.distinct, Some(4), "upper bound: shard distincts sum");
    }

    #[test]
    fn merge_entity_metrics_drops_inv_all_when_one_side_lacks_it() {
        let a = vec![entity(0, 10, 0.5, 0.5)];
        let mut b0 = entity(0, 10, 0.7, 0.7);
        b0.inv_all1 = None;
        b0.inv_alln = None;
        b0.distinct = None;
        let merged = merge_entity_metrics(&a, &[b0]);
        assert_eq!(merged[0].inv_all1, None);
        assert_eq!(merged[0].distinct, None);
        assert!((merged[0].inv_top1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let ms = vec![entity(0, 50, 0.95, 0.0), entity(1, 25, 0.5, 0.0), entity(2, 25, 0.05, 0.0)];
        let h = invariance_histogram(&ms, |m| m.inv_top1);
        assert!((h[9] - 0.5).abs() < 1e-12);
        assert!((h[5] - 0.25).abs() < 1e-12);
        assert!((h[0] - 0.25).abs() < 1e-12);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // 1.0 lands in the last bucket, not out of range.
        let ms = vec![entity(0, 1, 1.0, 0.0)];
        let h = invariance_histogram(&ms, |m| m.inv_top1);
        assert!((h[9] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_basic() {
        assert!((correlation(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((correlation(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&[1.0], &[1.0]), 0.0);
        assert_eq!(correlation(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn from_tracker_round_trip() {
        let mut t = ValueTracker::new(TrackerConfig::with_full());
        for v in [3, 3, 3, 0] {
            t.observe(v);
        }
        let m = EntityMetrics::from_tracker(17, &t, 8);
        assert_eq!(m.id, 17);
        assert_eq!(m.executions, 4);
        assert!((m.inv_top1 - 0.75).abs() < 1e-12);
        assert_eq!(m.inv_alln, Some(1.0));
        assert!((m.pct_zero - 0.25).abs() < 1e-12);
        assert_eq!(m.distinct, Some(2));
        assert_eq!(m.top_value, Some(3));
    }
}
