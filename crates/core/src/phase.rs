//! Phase detection and the adaptive convergent profiler.
//!
//! The convergent profiler (paper §IV) backs off geometrically once an
//! instruction converges, so a *phase change* after convergence — the
//! dominant value of an instruction switching, a working set rotating —
//! is mostly invisible: the profiler samples the new behaviour only at
//! its sparse re-profiling bursts, and its skip ladder never shrinks.
//!
//! This module closes that gap. Each instruction's value stream is cut
//! into fixed-size **windows** (counted in that instruction's own
//! executions, so the scheme is clock-free and independent of how
//! streams of different instructions interleave). A small top-k sketch,
//! fed by a strided subsample of the stream to keep per-event cost off
//! the hot path, summarises every window into a [`WindowSig`]
//! signature; when the
//! signature of consecutive windows changes — a majority value flips,
//! or the dominant share of the window moves by at least half the
//! quantisation scale — a **shift** is flagged. A shift while the instruction is
//! backed off *re-arms* it: the sampling state machine returns to burst
//! profiling with a fresh convergence history and the skip ladder reset
//! to `initial_skip`, bounded by a per-instruction re-arm budget so an
//! adversarially noisy stream cannot force unbounded re-profiling.
//!
//! Everything is deterministic: no clocks, no randomness, all state per
//! instruction. Entity-sharded runs are therefore bit-identical to
//! serial ones, and [`PhaseStats`] counters are exact sums of
//! per-instruction events that merge across shards by addition.

use vp_instrument::Analysis;
use vp_obs::{ConvEvents, TnvEvents};
use vp_sim::{InstrEvent, Machine};

use crate::convergent::{ConvergentConfig, ConvergentProfiler, ConvergentStats};
use crate::metrics::{Aggregate, EntityMetrics};
use crate::track::{TrackerConfig, ValueTracker};

/// Number of distinct values the per-window sketch tracks.
const SKETCH_K: usize = 4;

/// Detector sampling stride: only every `SKETCH_STRIDE`-th execution of
/// an instruction feeds the sketch (0-based stream positions 0, 8, 16, …
/// of that instruction — a pure per-entity function of the stream). The
/// profiler gates on the per-instruction execution counter it already
/// maintains, so on the other `SKETCH_STRIDE - 1` executions the
/// detector costs one mask-and-branch on a register-resident value;
/// that gate bounds the adaptive profiler's overhead over the stock
/// convergent profiler. A 1 024-event window still sees 128 samples —
/// ample to call a majority (and few enough that the space-saving
/// sketch's `samples / SKETCH_K` count inflation keeps heavy-tailed
/// windows below the [`TOP_MAJORITY`] trust floor; see there). Windows
/// advance in whole strides: a window spans
/// `ceil(window / SKETCH_STRIDE)` samples, i.e. exactly `window`
/// executions when `window` is a multiple of the stride, and the next
/// multiple of the stride otherwise. Must be a power of two (the gate
/// is a mask).
pub(crate) const SKETCH_STRIDE: u64 = 8;

/// Quantisation scale of a window's dominant-value share (`share16` runs
/// 0..=16); a share move of at least half the scale counts as a shift.
const SHARE_SCALE: u64 = 16;

/// Minimum quantised share for a window's top value to take part in the
/// shift rule: a majority (≥ 8/16). The space-saving sketch inflates
/// counts by up to `samples / SKETCH_K` through slot inheritance, so on a
/// diffuse window (no true majority) the reported top can be an artefact
/// of slot churn — two consecutive heavy-tailed windows may flip tops
/// without any distribution change. Majority tops are immune: a sketch
/// count above `window / 2` exceeds every other value's true count plus
/// the maximum inflation, so it identifies the true dominant value.
/// Below the floor the signature degrades to its share component alone.
const TOP_MAJORITY: u8 = (SHARE_SCALE / 2) as u8;

/// Re-profile budget of the adaptive profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhaseBudget {
    /// Maximum re-arms per instruction; once exhausted further shifts are
    /// counted as denied and the instruction stays backed off.
    pub max_rearms: u64,
    /// Window length in per-instruction executions over which signatures
    /// are computed. Must be positive.
    pub window: u64,
}

impl Default for PhaseBudget {
    /// 1 024-execution windows, at most 16 re-arms per instruction.
    fn default() -> Self {
        PhaseBudget { max_rearms: 16, window: 1_024 }
    }
}

/// Exact counters of the phase detector, summed over all instructions.
///
/// Like [`GovernorStats`](crate::govern::GovernorStats) these merge
/// across shards by addition and flow into checkpoint, telemetry and
/// `vprof stats` only when adaptive profiling is on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Signature windows completed.
    pub windows: u64,
    /// Consecutive-window signature changes flagged.
    pub shifts_detected: u64,
    /// Re-arms performed (shift while backed off, budget available).
    pub rearms: u64,
    /// Re-arms denied because the instruction's budget was exhausted.
    pub rearms_denied: u64,
}

impl PhaseStats {
    /// Sums another detector's counters into this one (shard merge).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.windows += other.windows;
        self.shifts_detected += other.shifts_detected;
        self.rearms += other.rearms;
        self.rearms_denied += other.rearms_denied;
    }

    /// Whether the detector ever intervened in the sampling schedule.
    pub fn adapted(&self) -> bool {
        self.rearms > 0 || self.rearms_denied > 0
    }
}

/// Signature of one completed window of an instruction's value stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSig {
    /// Dominant value of the window per the top-k sketch (count ties
    /// break towards the smaller value, so the signature is a pure
    /// function of the window's multiset). Only trusted by the shift
    /// rule when `share16` reports a majority — a space-saving sketch's
    /// top is exact for majority values but can be slot-churn noise on
    /// diffuse windows.
    pub top_value: u64,
    /// Dominant value's share of the window's sampled observations,
    /// quantised to 0..=16.
    pub share16: u8,
}

/// The shift-detection rule: consecutive windows shifted when the
/// dominant value changed while holding a majority in both windows, or
/// when its share moved by at least half the quantisation scale.
///
/// The majority guard keeps diffuse windows (no value above half the
/// window) from flagging shifts on sketch noise alone — there the top
/// reported by the space-saving sketch is not trustworthy (see
/// [`WindowSig::top_value`]), but large concentration changes still
/// register through the share component.
pub fn shifted(prev: &WindowSig, next: &WindowSig) -> bool {
    let top_trusted = prev.share16 >= TOP_MAJORITY && next.share16 >= TOP_MAJORITY;
    (top_trusted && prev.top_value != next.top_value)
        || prev.share16.abs_diff(next.share16) >= (SHARE_SCALE / 2) as u8
}

/// Quantises a dominant-value share to the signature scale (rounded).
pub(crate) fn quantize_share(top: u64, window: u64) -> u8 {
    debug_assert!(window > 0);
    let top = top.min(window);
    ((top * SHARE_SCALE + window / 2) / window) as u8
}

/// Space-saving top-k sketch of the current window's values.
///
/// Hits increment; misses displace the smallest counter, inheriting its
/// count plus one. Deterministic: scan order is slot order and ties on
/// the read side break towards the smaller value.
#[derive(Debug, Clone, Default)]
struct Sketch {
    entries: [(u64, u64); SKETCH_K],
    len: usize,
}

impl Sketch {
    #[inline]
    fn observe(&mut self, value: u64) {
        // Fast path: the dominant value gravitates to slot 0 via the
        // transpose below, so on skewed streams (the common case) this
        // is a single compare — this path runs on every sampled
        // observation, including ones the profiler skips, so it sets
        // the sampled-position cost of the adaptive profiler.
        if self.len > 0 && self.entries[0].0 == value {
            self.entries[0].1 += 1;
            return;
        }
        for i in 1..self.len {
            if self.entries[i].0 == value {
                self.entries[i].1 += 1;
                // Transpose towards the front: hot values bubble up, so
                // the next hit on them is cheaper. Deterministic — the
                // layout is a pure function of the window's sequence.
                self.entries.swap(i, i - 1);
                return;
            }
        }
        if self.len < SKETCH_K {
            self.entries[self.len] = (value, 1);
            self.len += 1;
            return;
        }
        let mut min = 0;
        for i in 1..SKETCH_K {
            if self.entries[i].1 < self.entries[min].1 {
                min = i;
            }
        }
        self.entries[min] = (value, self.entries[min].1 + 1);
    }

    /// Dominant `(value, count)`; count ties break to the smaller value.
    fn top(&self) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        for &(value, count) in &self.entries[..self.len] {
            best = match best {
                None => Some((value, count)),
                Some((bv, bc)) if count > bc || (count == bc && value < bv) => Some((value, count)),
                keep => keep,
            };
        }
        best
    }

    fn clear(&mut self) {
        self.len = 0;
    }
}

/// Per-instruction detector state: the in-progress window sketch, the
/// previous window's signature, and the re-arm budget already spent.
///
/// The detector is *sample*-driven: the profiler forwards only every
/// [`SKETCH_STRIDE`]-th execution (gated on the per-instruction
/// execution counter it already maintains), so the detector itself
/// keeps no per-event state and adds nothing to the non-sampled path.
#[derive(Debug, Clone, Default)]
pub(crate) struct Detector {
    sketch: Sketch,
    /// Samples accumulated into the current window's sketch.
    samples: u64,
    prev: Option<WindowSig>,
    /// Re-arms this instruction has consumed from its budget.
    pub(crate) rearms: u64,
}

impl Detector {
    /// Feeds one *sampled* value. Returns `Some(shifted)` when this
    /// sample completes a window of `samples_per_window` samples
    /// (`shifted` is false for the first window, which has no
    /// predecessor to compare against), `None` otherwise.
    ///
    /// `samples_per_window` is `ceil(window / SKETCH_STRIDE)`,
    /// precomputed by the profiler so the hot path never divides.
    ///
    /// Deliberately not inlined: this runs on 1 in [`SKETCH_STRIDE`]
    /// executions, and keeping its body out of the profiler's `observe`
    /// keeps that hot function small (register allocation there is what
    /// the adaptive-overhead bench measures).
    #[inline(never)]
    pub(crate) fn sample(&mut self, value: u64, samples_per_window: u64) -> Option<bool> {
        self.sketch.observe(value);
        self.samples += 1;
        if self.samples < samples_per_window {
            return None;
        }
        let (top_value, count) = self.sketch.top().expect("completed window is non-empty");
        let sig = WindowSig { top_value, share16: quantize_share(count, samples_per_window) };
        let is_shift = self.prev.as_ref().is_some_and(|prev| shifted(prev, &sig));
        self.prev = Some(sig);
        self.samples = 0;
        self.sketch.clear();
        Some(is_shift)
    }

    /// Sums another shard's spent budget into this instruction's.
    pub(crate) fn absorb(&mut self, other: &Detector) {
        self.rearms += other.rearms;
    }
}

/// The convergent profiler with phase detection armed: converged
/// instructions are re-armed when their value distribution shifts,
/// under the bounded budget of a [`PhaseBudget`].
///
/// A thin wrapper around [`ConvergentProfiler`] — on streams where the
/// detector never flags a shift the two are *bit-identical* (the
/// detector observes but never touches the sampling state machine), and
/// like the inner profiler all state is per-instruction, so
/// entity-sharded runs reproduce serial ones exactly.
///
/// ```
/// use vp_core::convergent::ConvergentConfig;
/// use vp_core::phase::{AdaptiveProfiler, PhaseBudget};
/// use vp_core::track::TrackerConfig;
///
/// let budget = PhaseBudget { max_rearms: 8, window: 64 };
/// let mut p = AdaptiveProfiler::new(TrackerConfig::default(), ConvergentConfig::default(), budget);
/// for i in 0..10_000u64 {
///     // Dominant value flips halfway through: a phase change.
///     p.observe(0, if i < 5_000 { 7 } else { 9 });
/// }
/// assert!(p.phase_stats().shifts_detected > 0);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveProfiler {
    inner: ConvergentProfiler,
}

impl AdaptiveProfiler {
    /// Creates an adaptive profiler.
    ///
    /// # Panics
    ///
    /// Panics if `budget.window` is 0, or on an invalid `config` (see
    /// [`ConvergentProfiler::new`]).
    pub fn new(
        tracker_config: TrackerConfig,
        config: ConvergentConfig,
        budget: PhaseBudget,
    ) -> AdaptiveProfiler {
        AdaptiveProfiler { inner: ConvergentProfiler::adaptive(tracker_config, config, budget) }
    }

    /// The inner sampler configuration.
    pub fn config(&self) -> ConvergentConfig {
        self.inner.config()
    }

    /// The re-profile budget.
    pub fn budget(&self) -> PhaseBudget {
        self.inner.phase_budget().expect("adaptive profiler always has a budget")
    }

    /// Exact detector counters, summed over all instructions.
    pub fn phase_stats(&self) -> PhaseStats {
        self.inner.phase_stats()
    }

    /// Sampling state-machine events (see [`ConvergentProfiler::events`]).
    pub fn events(&self) -> ConvEvents {
        self.inner.events()
    }

    /// Summed TNV-table events across all instruction trackers.
    pub fn tnv_events(&self) -> TnvEvents {
        self.inner.tnv_events()
    }

    /// Metric snapshots reweighted to true totals (see
    /// [`ConvergentProfiler::metrics`]).
    pub fn metrics(&self) -> Vec<EntityMetrics> {
        self.inner.metrics()
    }

    /// Execution-weighted aggregate over the sampled trackers.
    pub fn aggregate(&self) -> Aggregate {
        self.inner.aggregate()
    }

    /// Per-instruction overhead statistics, ordered by index.
    pub fn stats(&self) -> Vec<ConvergentStats> {
        self.inner.stats()
    }

    /// Overall fraction of executions profiled.
    pub fn overall_profile_fraction(&self) -> f64 {
        self.inner.overall_profile_fraction()
    }

    /// The sampled tracker of one instruction.
    pub fn tracker(&self, index: u32) -> Option<&ValueTracker> {
        self.inner.tracker(index)
    }

    /// Feeds one `(instruction, value)` event (trace-replay entry point).
    pub fn observe(&mut self, index: u32, value: u64) {
        self.inner.observe(index, value);
    }

    /// Feeds a batch of `(instruction, value)` events in stream order.
    pub fn observe_batch(&mut self, events: &[(u32, u64)]) {
        self.inner.observe_batch(events);
    }

    /// Merges another adaptive profiler (the *later* shard) into this
    /// one; detector counters sum exactly.
    ///
    /// # Panics
    ///
    /// Panics if tracker, sampler or budget configurations differ.
    pub fn merge(&mut self, other: AdaptiveProfiler) {
        self.inner.merge(other.inner);
    }

    /// View of the wrapped convergent profiler.
    pub fn as_convergent(&self) -> &ConvergentProfiler {
        &self.inner
    }
}

impl Analysis for AdaptiveProfiler {
    fn after_instr(&mut self, _machine: &Machine, event: &InstrEvent) {
        let Some((_, value)) = event.dest else { return };
        self.observe(event.index, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ConvergentConfig {
        ConvergentConfig {
            burst: 10,
            delta: 0.05,
            stable_checks: 2,
            initial_skip: 50,
            backoff: 2.0,
            max_skip: 400,
        }
    }

    fn small_budget() -> PhaseBudget {
        PhaseBudget { max_rearms: 16, window: 64 }
    }

    fn oscillating(values: &[u64], period: u64, len: u64) -> impl Iterator<Item = u64> + '_ {
        (0..len).map(move |i| values[((i / period) as usize) % values.len()])
    }

    #[test]
    fn sketch_is_deterministic_and_tie_breaks_to_smaller_value() {
        let mut s = Sketch::default();
        for v in [5, 3, 5, 3, 9, 9] {
            s.observe(v);
        }
        assert_eq!(s.top(), Some((3, 2)), "tie on count breaks to smaller value");
        s.observe(5);
        assert_eq!(s.top(), Some((5, 3)));
    }

    #[test]
    fn sketch_displaces_minimum_when_full() {
        let mut s = Sketch::default();
        for v in [1, 1, 1, 2, 3, 4] {
            s.observe(v);
        }
        // 5 misses: displaces one of the count-1 slots, inheriting 2.
        s.observe(5);
        assert_eq!(s.top(), Some((1, 3)));
        assert!(s.entries[..s.len].iter().any(|&(v, c)| v == 5 && c == 2));
    }

    /// Feeds sample values straight into a detector (the profiler's
    /// stride gate is exercised separately at the profiler level).
    fn drive(d: &mut Detector, samples_per_window: u64, values: &[u64]) -> Vec<bool> {
        values.iter().filter_map(|&v| d.sample(v, samples_per_window)).collect()
    }

    #[test]
    fn detector_windows_and_shift_rule() {
        let mut d = Detector::default();
        let samples: Vec<u64> =
            std::iter::repeat_n(7u64, 16).chain(std::iter::repeat_n(9, 8)).collect();
        let completions = drive(&mut d, 8, &samples);
        assert_eq!(completions, vec![false, false, true], "dominant flip is a shift");
    }

    #[test]
    fn share_collapse_without_top_change_is_a_shift() {
        // Window 1: all 7s (share16 = 16). Window 2: 7 dominant only by a
        // hair (share16 ~ 5) — same top value, share moved >= 8.
        let mut d = Detector::default();
        let mut samples = vec![7u64; 16 + 5];
        samples.extend([1, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
        let completions = drive(&mut d, 16, &samples);
        assert_eq!(completions, vec![false, true]);
    }

    #[test]
    fn diffuse_windows_do_not_shift_on_sketch_noise() {
        // Two consecutive windows of disjoint near-uniform values: the
        // sketch's reported tops differ, but no value holds a majority,
        // so the top comparison is suppressed and the (equally diffuse)
        // shares do not move — no shift.
        let mut d = Detector::default();
        let samples: Vec<u64> = (0u64..16).chain(100..116).collect();
        let completions = drive(&mut d, 16, &samples);
        assert_eq!(completions, vec![false, false], "sketch churn is not a phase");
        // A majority flip between the same kinds of windows still is.
        assert!(shifted(
            &WindowSig { top_value: 7, share16: 16 },
            &WindowSig { top_value: 9, share16: 16 }
        ));
        assert!(!shifted(
            &WindowSig { top_value: 7, share16: 5 },
            &WindowSig { top_value: 9, share16: 5 }
        ));
    }

    #[test]
    fn windows_advance_in_whole_strides() {
        // window = 64 with stride 8: 8 samples at 0-based positions
        // 0, 8, …, 56 — the 8th sample (57th execution) completes the
        // window; the 56th does not.
        let mut p = AdaptiveProfiler::new(TrackerConfig::default(), small_config(), small_budget());
        for _ in 0..56 {
            p.observe(0, 7);
        }
        assert_eq!(p.phase_stats().windows, 0);
        p.observe(0, 7);
        assert_eq!(p.phase_stats().windows, 1);
    }

    #[test]
    fn phase_free_stream_is_bit_identical_to_convergent() {
        let mut adaptive =
            AdaptiveProfiler::new(TrackerConfig::default(), small_config(), small_budget());
        let mut plain = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        // Stationary skewed stream: dominant value never changes.
        let stream: Vec<u64> =
            (0..20_000).map(|i| if i % 5 == 4 { 100 + i % 3 } else { 7 }).collect();
        for (i, &v) in stream.iter().enumerate() {
            adaptive.observe((i % 3) as u32, v);
            plain.observe((i % 3) as u32, v);
        }
        assert_eq!(adaptive.metrics(), plain.metrics());
        assert_eq!(adaptive.stats(), plain.stats());
        assert_eq!(adaptive.events(), plain.events());
        assert_eq!(adaptive.tnv_events(), plain.tnv_events());
        let ps = adaptive.phase_stats();
        assert!(ps.windows > 0);
        assert_eq!(ps.shifts_detected, 0);
        assert_eq!(ps.rearms, 0);
        assert!(!ps.adapted());
    }

    #[test]
    fn oscillating_stream_rearms_and_tracks_new_phase() {
        let mut p = AdaptiveProfiler::new(TrackerConfig::default(), small_config(), small_budget());
        for v in oscillating(&[7, 9], 4_096, 65_536) {
            p.observe(0, v);
        }
        let ps = p.phase_stats();
        assert!(ps.shifts_detected > 0, "phase flips must be detected: {ps:?}");
        assert!(ps.rearms > 0, "backed-off entity must re-arm: {ps:?}");
        // Both phases surface in the sampled tracker.
        let tnv = p.tracker(0).unwrap().tnv();
        let values: Vec<u64> = tnv.entries().iter().map(|e| e.value).collect();
        assert!(values.contains(&7) && values.contains(&9), "tnv: {tnv}");
    }

    #[test]
    fn budget_bounds_rearms_and_counts_denials() {
        let budget = PhaseBudget { max_rearms: 2, window: 64 };
        let mut p = AdaptiveProfiler::new(TrackerConfig::default(), small_config(), budget);
        for v in oscillating(&[1, 2, 3, 4], 1_024, 262_144) {
            p.observe(0, v);
        }
        let ps = p.phase_stats();
        assert_eq!(ps.rearms, 2, "budget caps re-arms: {ps:?}");
        assert!(ps.rearms_denied > 0, "further shifts are denied: {ps:?}");
        assert!(ps.adapted());
    }

    #[test]
    fn rearms_only_when_backed_off() {
        // With a huge delta the stream never converges, so shifts are
        // detected but nothing needs re-arming.
        let cfg = ConvergentConfig { delta: -1.0, ..small_config() };
        let mut p = AdaptiveProfiler::new(TrackerConfig::default(), cfg, small_budget());
        for v in oscillating(&[7, 9], 1_024, 16_384) {
            p.observe(0, v);
        }
        let ps = p.phase_stats();
        assert!(ps.shifts_detected > 0);
        assert_eq!(ps.rearms, 0);
        assert_eq!(ps.rearms_denied, 0);
        assert_eq!(p.stats()[0].profiled, p.stats()[0].total);
    }

    #[test]
    fn merge_sums_phase_stats_and_budget_spend() {
        let mut a = AdaptiveProfiler::new(TrackerConfig::default(), small_config(), small_budget());
        let mut b = AdaptiveProfiler::new(TrackerConfig::default(), small_config(), small_budget());
        for v in oscillating(&[7, 9], 2_048, 32_768) {
            a.observe(0, v);
        }
        for v in oscillating(&[3, 5], 2_048, 32_768) {
            b.observe(1, v);
        }
        let (sa, sb) = (a.phase_stats(), b.phase_stats());
        let mut expect = sa;
        expect.merge(&sb);
        a.merge(b);
        assert_eq!(a.phase_stats(), expect);
        assert_eq!(a.stats().len(), 2);
    }

    #[test]
    #[should_panic(expected = "different phase budgets")]
    fn merge_rejects_mismatched_budget() {
        let mut a = AdaptiveProfiler::new(TrackerConfig::default(), small_config(), small_budget());
        let b = AdaptiveProfiler::new(
            TrackerConfig::default(),
            small_config(),
            PhaseBudget { max_rearms: 1, ..small_budget() },
        );
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = AdaptiveProfiler::new(
            TrackerConfig::default(),
            small_config(),
            PhaseBudget { max_rearms: 1, window: 0 },
        );
    }

    #[test]
    fn quantize_share_is_rounded_and_clamped() {
        assert_eq!(quantize_share(0, 16), 0);
        assert_eq!(quantize_share(8, 16), 8);
        assert_eq!(quantize_share(16, 16), 16);
        assert_eq!(quantize_share(99, 16), 16, "overestimates clamp to the window");
        assert_eq!(quantize_share(1, 1024), 0);
        assert_eq!(quantize_share(1023, 1024), 16);
    }
}
