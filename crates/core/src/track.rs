//! Per-entity value tracking: a TNV table plus the scalar counters behind
//! the paper's metrics (LVP, % zero, execution count, last value), and the
//! exact [`FullProfile`] used as ground truth.

use crate::arena::ValueMap;
use crate::tnv::{Policy, TnvTable};

/// Exact value histogram — the "full profile" the paper uses as ground
/// truth when evaluating TNV-table accuracy (`Inv-All`, `Diff`). Space is
/// proportional to the number of *distinct* values, which is exactly the
/// cost the TNV table avoids. Counts live in an arena-style
/// [`ValueMap`] slab, so [`FullProfile::footprint_bytes`] is exact, not
/// an estimate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FullProfile {
    counts: ValueMap,
    observations: u64,
}

impl FullProfile {
    /// An empty profile.
    pub fn new() -> FullProfile {
        FullProfile::default()
    }

    /// Records one occurrence of `value`.
    pub fn observe(&mut self, value: u64) {
        self.counts.bump(value, 1);
        self.observations += 1;
    }

    /// Merges another profile into this one by summing per-value counts.
    ///
    /// Exact: the result equals the profile of the concatenated value
    /// streams, so all derived metrics (`inv_all`, `distinct`, `top`) match
    /// an unsharded run bit for bit.
    pub fn merge(&mut self, other: &FullProfile) {
        for (value, count) in other.counts.iter() {
            self.counts.bump(value, count);
        }
        self.observations += other.observations;
    }

    /// Total observations.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Number of distinct values seen — the paper's `Diff` numerator.
    pub fn distinct(&self) -> u64 {
        self.counts.len() as u64
    }

    /// The `n` most frequent `(value, count)` pairs, most frequent first.
    /// Ties are broken by value for determinism.
    pub fn top(&self, n: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.counts.iter().collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Exact invariance over the top `n` values (`Inv-All(n)`).
    pub fn inv_all(&self, n: usize) -> f64 {
        if self.observations == 0 {
            return 0.0;
        }
        let covered: u64 = self.top(n).iter().map(|&(_, c)| c).sum();
        covered as f64 / self.observations as f64
    }

    /// Exact count for a specific value.
    pub fn count_of(&self, value: u64) -> u64 {
        self.counts.get(value).unwrap_or(0)
    }

    /// Exact memory footprint in bytes: the struct itself plus the
    /// [`ValueMap`] slab, whose size is its allocated *capacity* — what
    /// is actually resident, not just occupied.
    ///
    /// Exact by construction: the slab is the profile's only heap block
    /// and its byte size is `capacity × 16` with no hidden metadata, so
    /// the governor's `bytes_peak` is ground truth rather than a model
    /// of `HashMap` internals. Capacity is a deterministic, monotone
    /// function of the observation history, so the footprint reproduces
    /// across runs and never shrinks under `observe`.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<FullProfile>() + self.counts.footprint_bytes()
    }
}

/// How much state a tracker keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// TNV table capacity.
    pub capacity: usize,
    /// TNV replacement policy.
    pub policy: Policy,
    /// Also keep the exact histogram (ground truth; costs memory
    /// proportional to distinct values). Enable for accuracy experiments,
    /// disable for realistic profiling overhead.
    pub keep_full: bool,
}

impl Default for TrackerConfig {
    /// The paper's defaults: an 8-entry `LfuClear` table, no full profile.
    fn default() -> Self {
        TrackerConfig { capacity: 8, policy: Policy::default(), keep_full: false }
    }
}

impl TrackerConfig {
    /// Default table with the exact histogram enabled.
    pub fn with_full() -> TrackerConfig {
        TrackerConfig { keep_full: true, ..TrackerConfig::default() }
    }
}

/// Tracks the value stream of one profiled entity.
///
/// ```
/// use vp_core::track::{TrackerConfig, ValueTracker};
///
/// let mut t = ValueTracker::new(TrackerConfig::with_full());
/// for v in [4, 4, 4, 4, 0, 9, 4, 4, 4, 4] {
///     t.observe(v);
/// }
/// assert_eq!(t.executions(), 10);
/// assert!((t.inv_top(1) - 0.8).abs() < 1e-12);     // 8/10 are the value 4
/// assert!((t.lvp() - 0.6).abs() < 1e-12);          // 6/10 repeat the previous
/// assert!((t.pct_zero() - 0.1).abs() < 1e-12);
/// assert_eq!(t.full().unwrap().distinct(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct ValueTracker {
    tnv: TnvTable,
    full: Option<FullProfile>,
    executions: u64,
    zeros: u64,
    lvp_hits: u64,
    first: Option<u64>,
    last: Option<u64>,
}

impl ValueTracker {
    /// Creates a tracker with the given configuration.
    pub fn new(config: TrackerConfig) -> ValueTracker {
        ValueTracker {
            tnv: TnvTable::new(config.capacity, config.policy),
            full: config.keep_full.then(FullProfile::new),
            executions: 0,
            zeros: 0,
            lvp_hits: 0,
            first: None,
            last: None,
        }
    }

    /// Records one produced value.
    pub fn observe(&mut self, value: u64) {
        self.executions += 1;
        if value == 0 {
            self.zeros += 1;
        }
        if self.last == Some(value) {
            self.lvp_hits += 1;
        }
        if self.first.is_none() {
            self.first = Some(value);
        }
        self.last = Some(value);
        self.tnv.observe(value);
        if let Some(full) = &mut self.full {
            full.observe(value);
        }
    }

    /// Records a batch of produced values — semantically identical to
    /// calling [`observe`](ValueTracker::observe) once per value, but the
    /// scalar counters update in one pass over the slice and the TNV
    /// table takes its batched fast path.
    pub fn observe_batch(&mut self, values: &[u64]) {
        let (&first, &last) = match (values.first(), values.last()) {
            (Some(first), Some(last)) => (first, last),
            _ => return,
        };
        self.executions += values.len() as u64;
        let mut prev = self.last;
        for &value in values {
            if value == 0 {
                self.zeros += 1;
            }
            if prev == Some(value) {
                self.lvp_hits += 1;
            }
            prev = Some(value);
        }
        if self.first.is_none() {
            self.first = Some(first);
        }
        self.last = Some(last);
        self.tnv.observe_batch(values);
        if let Some(full) = &mut self.full {
            for &value in values {
                full.observe(value);
            }
        }
    }

    /// Merges another tracker into this one, treating `other` as the
    /// *later* shard of the same entity's value stream.
    ///
    /// The scalar counters (executions, zeros, LVP hits) and the exact
    /// histogram are exact: they match a single tracker fed the
    /// concatenated stream, including the LVP hit on the shard boundary
    /// (credited when this shard's last value equals the other's first).
    /// The TNV table merges per [`TnvTable::merge`], so `inv_top` remains
    /// an under-estimate. The exact histogram survives only if both shards
    /// kept one.
    ///
    /// # Panics
    ///
    /// Panics if the TNV configurations differ.
    pub fn merge(&mut self, other: &ValueTracker) {
        self.executions += other.executions;
        self.zeros += other.zeros;
        self.lvp_hits += other.lvp_hits;
        if self.last.is_some() && self.last == other.first {
            self.lvp_hits += 1;
        }
        self.first = self.first.or(other.first);
        self.last = other.last.or(self.last);
        self.tnv.merge(&other.tnv);
        self.full = match (self.full.take(), &other.full) {
            (Some(mut mine), Some(theirs)) => {
                mine.merge(theirs);
                Some(mine)
            }
            _ => None,
        };
    }

    /// Number of observed executions.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Last-value predictability: the fraction of executions whose value
    /// equalled the immediately preceding execution's value (what a
    /// last-value predictor with an infinite table would get right).
    pub fn lvp(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.lvp_hits as f64 / self.executions as f64
        }
    }

    /// Fraction of executions producing the value 0.
    pub fn pct_zero(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.zeros as f64 / self.executions as f64
        }
    }

    /// TNV-estimated invariance over the top `n` values (`Inv-Top`).
    pub fn inv_top(&self, n: usize) -> f64 {
        self.tnv.inv_top(n)
    }

    /// Exact invariance over the top `n` values (`Inv-All`), if the full
    /// profile was kept.
    pub fn inv_all(&self, n: usize) -> Option<f64> {
        self.full.as_ref().map(|f| f.inv_all(n))
    }

    /// Number of distinct values, if the full profile was kept.
    pub fn distinct(&self) -> Option<u64> {
        self.full.as_ref().map(FullProfile::distinct)
    }

    /// The TNV table.
    pub fn tnv(&self) -> &TnvTable {
        &self.tnv
    }

    /// Self-profiling event counts of the underlying TNV table.
    pub fn tnv_events(&self) -> vp_obs::TnvEvents {
        self.tnv.events()
    }

    /// The exact histogram, if kept.
    pub fn full(&self) -> Option<&FullProfile> {
        self.full.as_ref()
    }

    /// The most recent value, if any.
    pub fn last_value(&self) -> Option<u64> {
        self.last
    }

    /// Estimated memory footprint in bytes (TNV table plus the exact
    /// histogram when kept).
    pub fn footprint_bytes(&self) -> usize {
        self.tnv.footprint_bytes() + self.full.as_ref().map_or(0, FullProfile::footprint_bytes)
    }

    /// Whether the tracker still holds the exact histogram (i.e. has not
    /// been degraded and was configured with `keep_full`).
    pub fn has_full(&self) -> bool {
        self.full.is_some()
    }

    /// Degrades the tracker one rung: drops the exact histogram, keeping
    /// the constant-space TNV table and every scalar counter. Returns the
    /// bytes freed (0 when there was no histogram to drop).
    ///
    /// After degradation the tracker reports `inv_all*`/`distinct` as
    /// `None` — exactly the shape [`merge`](ValueTracker::merge) already
    /// produces when one shard lacks the full profile, which the metric
    /// aggregation tolerates — while `inv_top*`, LVP, `% zero`, and
    /// executions stay bit-identical to an undegraded tracker's.
    pub fn degrade(&mut self) -> usize {
        match self.full.take() {
            Some(full) => full.footprint_bytes(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profile_exactness() {
        let mut f = FullProfile::new();
        for v in [1, 2, 2, 3, 3, 3] {
            f.observe(v);
        }
        assert_eq!(f.observations(), 6);
        assert_eq!(f.distinct(), 3);
        assert_eq!(f.top(2), vec![(3, 3), (2, 2)]);
        assert!((f.inv_all(1) - 0.5).abs() < 1e-12);
        assert!((f.inv_all(3) - 1.0).abs() < 1e-12);
        assert_eq!(f.count_of(2), 2);
        assert_eq!(f.count_of(99), 0);
    }

    #[test]
    fn full_profile_tie_break_deterministic() {
        let mut f = FullProfile::new();
        for v in [9, 1, 9, 1] {
            f.observe(v);
        }
        assert_eq!(f.top(1), vec![(1, 2)]); // smaller value wins ties
    }

    #[test]
    fn lvp_of_constant_stream() {
        let mut t = ValueTracker::new(TrackerConfig::default());
        for _ in 0..100 {
            t.observe(5);
        }
        assert!((t.lvp() - 0.99).abs() < 1e-12); // 99 of 100 repeat
        assert!((t.inv_top(1) - 1.0).abs() < 1e-12);
        assert_eq!(t.last_value(), Some(5));
    }

    #[test]
    fn lvp_of_alternating_stream_is_zero() {
        let mut t = ValueTracker::new(TrackerConfig::default());
        for i in 0..100u64 {
            t.observe(i % 2);
        }
        assert_eq!(t.lvp(), 0.0);
        // ... but invariance over the top-2 values is total:
        assert!((t.inv_top(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_invariance_despite_low_lvp() {
        // The paper's key observation: invariance and last-value
        // predictability are different properties. 90% of values are A but
        // interleaved with B every 10th execution — LVP sees breaks, the
        // TNV table sees 90% invariance.
        let mut t = ValueTracker::new(TrackerConfig::default());
        for i in 0..1000u64 {
            t.observe(if i % 10 == 9 { 1 } else { 0 });
        }
        assert!(t.inv_top(1) >= 0.89);
        assert!(t.lvp() < 0.85);
        assert!((t.pct_zero() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn tracker_without_full_profile() {
        let mut t = ValueTracker::new(TrackerConfig::default());
        t.observe(1);
        assert!(t.inv_all(1).is_none());
        assert!(t.distinct().is_none());
        assert!(t.full().is_none());
    }

    #[test]
    fn tracker_with_full_profile_matches_tnv_on_few_values() {
        let mut t = ValueTracker::new(TrackerConfig::with_full());
        for v in [1, 1, 2, 2, 2, 3] {
            t.observe(v);
        }
        // With fewer distinct values than capacity, TNV is exact.
        assert!((t.inv_top(3) - t.inv_all(3).unwrap()).abs() < 1e-12);
        assert_eq!(t.distinct(), Some(3));
    }

    #[test]
    fn footprint_constant_for_tnv_grows_for_full() {
        let mut tnv_only = ValueTracker::new(TrackerConfig::default());
        let mut with_full = ValueTracker::new(TrackerConfig::with_full());
        let base_tnv = tnv_only.footprint_bytes();
        let base_full = with_full.footprint_bytes();
        for v in 0..10_000u64 {
            tnv_only.observe(v);
            with_full.observe(v);
        }
        assert_eq!(tnv_only.footprint_bytes(), base_tnv, "TNV space is constant");
        assert!(
            with_full.footprint_bytes() > base_full + 10_000 * 8,
            "full profile grows with distinct values"
        );
    }

    #[test]
    fn footprint_is_monotone_under_observe() {
        // The budget relies on footprints never shrinking as values are
        // observed: hash-map capacity only grows.
        let mut full = FullProfile::new();
        let mut tracker = ValueTracker::new(TrackerConfig::with_full());
        let mut last_full = full.footprint_bytes();
        let mut last_tracker = tracker.footprint_bytes();
        for v in 0..4096u64 {
            full.observe(v % 977); // repeats exercise the no-growth case
            tracker.observe(v % 977);
            let now_full = full.footprint_bytes();
            let now_tracker = tracker.footprint_bytes();
            assert!(now_full >= last_full, "full profile footprint shrank at {v}");
            assert!(now_tracker >= last_tracker, "tracker footprint shrank at {v}");
            last_full = now_full;
            last_tracker = now_tracker;
        }
        // Capacity accounting: the map allocates at least one bucket per
        // resident entry.
        assert!(last_full >= std::mem::size_of::<FullProfile>() + 977 * 3 * 8);
    }

    #[test]
    fn degrade_drops_only_the_full_profile() {
        let mut governed = ValueTracker::new(TrackerConfig::with_full());
        let mut reference = ValueTracker::new(TrackerConfig::with_full());
        for v in [4u64, 4, 0, 9, 4, 4, 7, 4] {
            governed.observe(v);
            reference.observe(v);
        }
        assert!(governed.has_full());
        let freed = governed.degrade();
        assert!(freed > 0);
        assert!(!governed.has_full());
        assert_eq!(governed.degrade(), 0, "second degrade frees nothing");
        assert_eq!(governed.footprint_bytes() + freed, reference.footprint_bytes());
        // Everything except the exact histogram is untouched.
        assert!(governed.inv_all(1).is_none());
        assert!(governed.distinct().is_none());
        assert_eq!(governed.executions(), reference.executions());
        assert_eq!(governed.lvp(), reference.lvp());
        assert_eq!(governed.pct_zero(), reference.pct_zero());
        assert_eq!(governed.inv_top(1), reference.inv_top(1));
        assert_eq!(governed.last_value(), reference.last_value());
    }

    #[test]
    fn full_profile_merge_is_exact() {
        let stream = [1u64, 2, 2, 3, 3, 3, 2, 1];
        let mut whole = FullProfile::new();
        for &v in &stream {
            whole.observe(v);
        }
        let (left, right) = stream.split_at(3);
        let mut a = FullProfile::new();
        let mut b = FullProfile::new();
        left.iter().for_each(|&v| a.observe(v));
        right.iter().for_each(|&v| b.observe(v));
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn tracker_merge_matches_concatenated_stream() {
        // The split lands between two equal values, so the shard-boundary
        // LVP hit is exercised.
        let stream = [5u64, 5, 0, 7, 7, 7, 0, 5];
        for split in 0..=stream.len() {
            let mut whole = ValueTracker::new(TrackerConfig::with_full());
            stream.iter().for_each(|&v| whole.observe(v));
            let mut a = ValueTracker::new(TrackerConfig::with_full());
            let mut b = ValueTracker::new(TrackerConfig::with_full());
            stream[..split].iter().for_each(|&v| a.observe(v));
            stream[split..].iter().for_each(|&v| b.observe(v));
            a.merge(&b);
            assert_eq!(a.executions(), whole.executions(), "split {split}");
            assert_eq!(a.lvp(), whole.lvp(), "split {split}");
            assert_eq!(a.pct_zero(), whole.pct_zero(), "split {split}");
            assert_eq!(a.last_value(), whole.last_value(), "split {split}");
            assert_eq!(a.full(), whole.full(), "split {split}");
        }
    }

    #[test]
    fn tracker_merge_drops_full_profile_when_one_side_lacks_it() {
        let mut a = ValueTracker::new(TrackerConfig::with_full());
        let mut b = ValueTracker::new(TrackerConfig::default());
        a.observe(1);
        b.observe(2);
        a.merge(&b);
        assert!(a.full().is_none());
        assert_eq!(a.executions(), 2);
    }

    #[test]
    fn empty_tracker_metrics() {
        let t = ValueTracker::new(TrackerConfig::with_full());
        assert_eq!(t.executions(), 0);
        assert_eq!(t.lvp(), 0.0);
        assert_eq!(t.pct_zero(), 0.0);
        assert_eq!(t.inv_top(8), 0.0);
        assert_eq!(t.inv_all(8), Some(0.0));
        assert_eq!(t.last_value(), None);
    }
}
