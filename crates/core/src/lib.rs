//! # vp-core — Value Profiling
//!
//! Implementation of *Value Profiling* (Brad Calder, Peter Feller, Alan
//! Eustace; MICRO-30, 1997) and its thesis extension *Value Profiling for
//! Instructions and Memory Locations* (Feller, UCSD TR CS98-581).
//!
//! Value profiling measures, for each instruction / memory location /
//! procedure parameter of a program, how *invariant* the values it produces
//! at run time are. Its outputs drive code specialization, value
//! prediction and speculation:
//!
//! * [`tnv::TnvTable`] — the Top-N-Value table, a constant-space sketch of
//!   an entity's most frequent values, maintained with LFU replacement and
//!   periodic lower-part clearing;
//! * [`track::ValueTracker`] — TNV table plus the paper's scalar metrics
//!   (LVP, %zero) and an optional exact histogram ([`track::FullProfile`]);
//! * [`InstructionProfiler`] / [`MemoryProfiler`] /
//!   [`params::ParamProfiler`] — the three profiled entity kinds, all
//!   pluggable [`vp_instrument::Analysis`] tools;
//! * [`convergent::ConvergentProfiler`] — the paper's low-overhead
//!   sampling profiler that backs off once an instruction's invariance has
//!   converged, plus the CPI-style [`sampled::SampledProfiler`] baselines;
//! * [`metrics`] — execution-weighted aggregates, invariance histograms
//!   and correlation, i.e. the numbers in the paper's tables and figures;
//! * [`report`] — table rendering and profile comparison (train vs test,
//!   full vs convergent).
//!
//! ## Quick example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use vp_core::{InstructionProfiler, track::TrackerConfig};
//! use vp_instrument::{Instrumenter, Selection};
//! use vp_sim::MachineConfig;
//!
//! let program = vp_asm::assemble(
//!     r#"
//!     .data
//!     flag: .quad 1
//!     .text
//!     main:
//!         li r9, 1000
//!         la r8, flag
//!     loop:
//!         ldd  r2, 0(r8)       # a semi-invariant load
//!         addi r9, r9, -1
//!         bnz  r9, loop
//!         sys exit
//!     "#,
//! )?;
//! let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
//! Instrumenter::new()
//!     .select(Selection::LoadsOnly)
//!     .run(&program, MachineConfig::new(), 100_000, &mut profiler)?;
//! let agg = profiler.aggregate();
//! assert!((agg.inv_top1 - 1.0).abs() < 1e-9); // the load always sees 1
//! # Ok(())
//! # }
//! ```

pub mod arena;
pub mod convergent;
pub mod durable;
pub mod fault;
pub mod govern;
pub mod instr_profile;
pub mod memory;
pub mod metrics;
pub mod params;
pub mod phase;
pub mod profile_io;
pub mod report;
pub mod sampled;
pub mod shard;
pub mod temporal;
pub mod tnv;
pub mod track;

pub use arena::{Arena, ValueMap};
pub use convergent::{ConvergentConfig, ConvergentProfiler, ConvergentStats};
pub use durable::{
    append_jsonl, crc32, load_profile, parse_profile_checked, write_atomic, write_profile,
    CheckedProfile, Integrity, IntegrityMode, LoadProfileError,
};
pub use fault::{FaultAction, FaultPlan};
pub use govern::{Governor, GovernorStats, MemBudget};
pub use instr_profile::InstructionProfiler;
pub use memory::MemoryProfiler;
pub use metrics::{
    aggregate, correlation, invariance_histogram, merge_entity_metrics, Aggregate, EntityMetrics,
};
pub use params::{ParamMetrics, ParamProfiler, ParamSlot};
pub use phase::{AdaptiveProfiler, PhaseBudget, PhaseStats, WindowSig};
pub use profile_io::{parse_profile, render_profile, ParseProfileError};
pub use report::{compare, group_by_class, render_metric_table, ProfileComparison, ReportRow};
pub use sampled::{SampleStrategy, SampledProfiler};
pub use shard::{
    partition_by_entity, partition_count, profile_sharded, split_by_time, StreamProfiler,
};
pub use temporal::{TemporalProfiler, WindowMetrics};
pub use tnv::{Policy, TnvEntry, TnvTable};
pub use track::{FullProfile, TrackerConfig, ValueTracker};
