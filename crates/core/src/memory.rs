//! The memory-location value profiler.
//!
//! The thesis extends value profiling from instructions to *memory
//! locations*: for each (aligned) address, profile the values stored to
//! it. Semi-invariant locations are candidates for the same optimizations
//! as semi-invariant instructions (e.g. speculative load bypassing,
//! Moudgill & Moreno \[29\]).

use std::collections::HashMap;

use vp_instrument::Analysis;
use vp_sim::{Machine, MemAccess};

use crate::govern::{Governor, GovernorStats, MemBudget};
use crate::metrics::{aggregate, Aggregate, EntityMetrics};
use crate::track::{TrackerConfig, ValueTracker};

/// Profiles values written to memory locations.
///
/// Locations are tracked at a configurable alignment granularity (default
/// 8 bytes — one 64-bit word per tracker, the granularity the thesis
/// profiles). The tracker population is capped so a pathological workload
/// cannot exhaust memory; overflowing stores are counted in
/// [`MemoryProfiler::dropped`].
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use vp_core::MemoryProfiler;
/// use vp_core::track::TrackerConfig;
/// use vp_instrument::{Instrumenter, Selection};
/// use vp_sim::MachineConfig;
///
/// let program = vp_asm::assemble(
///     r#"
///     .data
///     x: .quad 0
///     .text
///     main:
///         la  r8, x
///         li  r9, 20
///     loop:
///         std r9, 0(r8)         # store the loop counter: varying
///         addi r9, r9, -1
///         bnz r9, loop
///         sys exit
///     "#,
/// )?;
/// let mut profiler = MemoryProfiler::new(TrackerConfig::with_full());
/// Instrumenter::new()
///     .select(Selection::MemoryOps)
///     .run(&program, MachineConfig::new(), 10_000, &mut profiler)?;
/// let metrics = profiler.metrics();
/// assert_eq!(metrics.len(), 1);
/// assert_eq!(metrics[0].executions, 20);
/// assert!(metrics[0].inv_top1 < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryProfiler {
    config: TrackerConfig,
    granularity: u64,
    max_locations: usize,
    include_loads: bool,
    trackers: HashMap<u64, ValueTracker>,
    dropped: u64,
    governor: Option<Governor>,
}

impl MemoryProfiler {
    /// Default limit on tracked locations.
    pub const DEFAULT_MAX_LOCATIONS: usize = 1 << 20;

    /// Creates a profiler tracking 8-byte-aligned locations, observing
    /// stored values only (the thesis's primary memory profile).
    pub fn new(config: TrackerConfig) -> MemoryProfiler {
        MemoryProfiler {
            config,
            granularity: 8,
            max_locations: Self::DEFAULT_MAX_LOCATIONS,
            include_loads: false,
            trackers: HashMap::new(),
            dropped: 0,
            governor: None,
        }
    }

    /// Puts the resident tracker state under a byte budget with the
    /// degradation ladder of [`crate::govern`]. The location *count* cap
    /// ([`with_max_locations`](MemoryProfiler::with_max_locations)) still
    /// applies independently; the budget governs *bytes*.
    pub fn with_budget(mut self, budget: MemBudget) -> MemoryProfiler {
        self.governor = Some(Governor::new(budget));
        self
    }

    /// The governor's intervention counters, when a budget is in force.
    pub fn governor_stats(&self) -> Option<&GovernorStats> {
        self.governor.as_ref().map(Governor::stats)
    }

    /// Also observe values *read* from each location, so the profile
    /// reflects the values a location supplies, not just those written to
    /// it (the thesis's read-side variant; pair with
    /// [`Selection::MemoryOps`](vp_instrument::Selection)).
    pub fn including_loads(mut self, yes: bool) -> MemoryProfiler {
        self.include_loads = yes;
        self
    }

    /// Sets the alignment granularity in bytes (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `granularity` is 0 or not a power of two.
    pub fn with_granularity(mut self, granularity: u64) -> MemoryProfiler {
        assert!(granularity.is_power_of_two(), "granularity must be a power of two");
        self.granularity = granularity;
        self
    }

    /// Caps the number of tracked locations.
    pub fn with_max_locations(mut self, max: usize) -> MemoryProfiler {
        self.max_locations = max;
        self
    }

    /// Stores ignored because the location cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of tracked locations.
    pub fn locations(&self) -> usize {
        self.trackers.len()
    }

    /// The tracker for the location containing `address`.
    pub fn tracker(&self, address: u64) -> Option<&ValueTracker> {
        self.trackers.get(&(address & !(self.granularity - 1)))
    }

    /// Metric snapshots per location, ordered by address.
    pub fn metrics(&self) -> Vec<EntityMetrics> {
        let mut out: Vec<EntityMetrics> = self
            .trackers
            .iter()
            .map(|(&a, t)| EntityMetrics::from_tracker(a, t, self.config.capacity))
            .collect();
        out.sort_by_key(|m| m.id);
        out
    }

    /// Execution-weighted aggregate over all locations.
    pub fn aggregate(&self) -> Aggregate {
        aggregate(&self.metrics())
    }

    /// Merges another memory profiler (a later shard of the workload) into
    /// this one. Shared locations merge per [`ValueTracker::merge`];
    /// locations only `other` saw move over while the tracked-location cap
    /// still holds — overflowing locations are dropped with their
    /// executions added to [`dropped`](MemoryProfiler::dropped).
    ///
    /// # Panics
    ///
    /// Panics if the profilers differ in tracker configuration,
    /// granularity, or load inclusion.
    pub fn merge(&mut self, other: MemoryProfiler) {
        assert_eq!(
            self.config, other.config,
            "cannot merge memory profilers with different tracker configs"
        );
        assert_eq!(
            self.granularity, other.granularity,
            "cannot merge memory profilers with different granularity"
        );
        assert_eq!(
            self.include_loads, other.include_loads,
            "cannot merge memory profilers with different load inclusion"
        );
        assert_eq!(
            self.governor.is_some(),
            other.governor.is_some(),
            "cannot merge governed and ungoverned memory profilers"
        );
        self.dropped += other.dropped;
        let other_governor = other.governor;
        for (address, theirs) in other.trackers {
            if let Some(mine) = self.trackers.get_mut(&address) {
                mine.merge(&theirs);
            } else if self.trackers.len() < self.max_locations {
                self.trackers.insert(address, theirs);
            } else {
                self.dropped += theirs.executions();
            }
        }
        if let (Some(governor), Some(theirs)) = (&mut self.governor, &other_governor) {
            let resident = self.trackers.values().map(ValueTracker::footprint_bytes).sum();
            governor.absorb(theirs, resident);
        }
    }

    /// The `n` most frequently written locations, hottest first.
    pub fn hottest(&self, n: usize) -> Vec<EntityMetrics> {
        let mut ms = self.metrics();
        ms.sort_by(|a, b| b.executions.cmp(&a.executions).then(a.id.cmp(&b.id)));
        ms.truncate(n);
        ms
    }

    /// Summed TNV-table events across all location trackers.
    pub fn tnv_events(&self) -> vp_obs::TnvEvents {
        let mut out = vp_obs::TnvEvents::default();
        for tracker in self.trackers.values() {
            out.merge(&tracker.tnv_events());
        }
        out
    }
}

impl MemoryProfiler {
    fn observe_access(&mut self, access: &MemAccess) {
        let key = access.address & !(self.granularity - 1);
        if let Some(governor) = &mut self.governor {
            // The location-count cap fires before the byte budget for new
            // locations; it keeps its own counter, distinct from the
            // governor's budget-driven drops.
            if !self.trackers.contains_key(&key)
                && !governor.is_dropped(key)
                && self.trackers.len() >= self.max_locations
            {
                self.dropped += 1;
                return;
            }
            governor.observe(&mut self.trackers, self.config, key, access.value);
            return;
        }
        if let Some(t) = self.trackers.get_mut(&key) {
            t.observe(access.value);
        } else if self.trackers.len() < self.max_locations {
            let mut t = ValueTracker::new(self.config);
            t.observe(access.value);
            self.trackers.insert(key, t);
        } else {
            self.dropped += 1;
        }
    }
}

impl Analysis for MemoryProfiler {
    fn on_store(&mut self, _machine: &Machine, _index: u32, access: &MemAccess) {
        self.observe_access(access);
    }

    fn on_load(&mut self, _machine: &Machine, _index: u32, access: &MemAccess) {
        if self.include_loads {
            self.observe_access(access);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_instrument::{Instrumenter, Selection};
    use vp_sim::MachineConfig;

    fn run(src: &str, profiler: &mut MemoryProfiler) {
        let program = vp_asm::assemble(src).unwrap();
        Instrumenter::new()
            .select(Selection::MemoryOps)
            .run(&program, MachineConfig::new(), 100_000, profiler)
            .unwrap();
    }

    #[test]
    fn invariant_location() {
        let mut p = MemoryProfiler::new(TrackerConfig::with_full());
        run(
            r#"
            .data
            x: .quad 0
            .text
            main:
                la r8, x
                li r9, 30
                li r10, 5
            loop:
                std r10, 0(r8)   # always 5
                addi r9, r9, -1
                bnz r9, loop
                sys exit
            "#,
            &mut p,
        );
        assert_eq!(p.locations(), 1);
        let m = &p.metrics()[0];
        assert!((m.inv_top1 - 1.0).abs() < 1e-12);
        assert_eq!(m.top_value, Some(5));
        assert_eq!(p.dropped(), 0);
        assert!(p.tracker(m.id).is_some());
        assert!(p.tracker(m.id + 3).is_some(), "sub-word addresses map to the same tracker");
    }

    #[test]
    fn granularity_merges_subword_stores() {
        let mut p = MemoryProfiler::new(TrackerConfig::default()).with_granularity(8);
        run(
            r#"
            .data
            x: .quad 0
            .text
            main:
                la r8, x
                li r9, 1
                stb r9, 0(r8)
                stb r9, 4(r8)
                sys exit
            "#,
            &mut p,
        );
        assert_eq!(p.locations(), 1);
        assert_eq!(p.metrics()[0].executions, 2);
    }

    #[test]
    fn location_cap_drops() {
        let mut p = MemoryProfiler::new(TrackerConfig::default()).with_max_locations(2);
        run(
            r#"
            .data
            buf: .space 64
            .text
            main:
                la r8, buf
                std r0, 0(r8)
                std r0, 8(r8)
                std r0, 16(r8)
                std r0, 24(r8)
                sys exit
            "#,
            &mut p,
        );
        assert_eq!(p.locations(), 2);
        assert_eq!(p.dropped(), 2);
    }

    #[test]
    fn hottest_ordering() {
        let mut p = MemoryProfiler::new(TrackerConfig::default());
        run(
            r#"
            .data
            buf: .space 16
            .text
            main:
                la r8, buf
                std r0, 0(r8)
                std r0, 8(r8)
                std r0, 8(r8)
                sys exit
            "#,
            &mut p,
        );
        let hot = p.hottest(1);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].executions, 2);
        let agg = p.aggregate();
        assert_eq!(agg.executions, 3);
    }

    #[test]
    fn including_loads_observes_reads() {
        let src = r#"
            .data
            x: .quad 5
            .text
            main:
                la  r8, x
                ldd r2, 0(r8)
                ldd r2, 0(r8)
                std r2, 0(r8)
                sys exit
        "#;
        let mut stores_only = MemoryProfiler::new(TrackerConfig::default());
        run(src, &mut stores_only);
        assert_eq!(stores_only.metrics()[0].executions, 1);
        let mut both = MemoryProfiler::new(TrackerConfig::default()).including_loads(true);
        run(src, &mut both);
        assert_eq!(both.metrics()[0].executions, 3);
        assert!((both.metrics()[0].inv_top1 - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_granularity_panics() {
        let _ = MemoryProfiler::new(TrackerConfig::default()).with_granularity(6);
    }

    const COUNTER_STORES: &str = r#"
        .data
        buf: .space 32
        .text
        main:
            la r8, buf
            li r9, 200
        loop:
            std r9, 0(r8)
            std r9, 8(r8)
            std r9, 16(r8)
            std r9, 24(r8)
            addi r9, r9, -1
            bnz r9, loop
            sys exit
    "#;

    #[test]
    fn generous_budget_changes_nothing() {
        use crate::govern::MemBudget;
        let mut plain = MemoryProfiler::new(TrackerConfig::with_full());
        run(COUNTER_STORES, &mut plain);
        let mut governed =
            MemoryProfiler::new(TrackerConfig::with_full()).with_budget(MemBudget::mib(64));
        run(COUNTER_STORES, &mut governed);
        assert_eq!(governed.metrics(), plain.metrics());
        assert_eq!(governed.dropped(), 0);
        assert!(!governed.governor_stats().unwrap().intervened());
    }

    #[test]
    fn tight_budget_degrades_locations_but_keeps_scalars() {
        use crate::govern::MemBudget;
        let mut plain = MemoryProfiler::new(TrackerConfig::with_full());
        run(COUNTER_STORES, &mut plain);
        let budget = MemBudget::bytes(4 * 1024);
        let mut governed = MemoryProfiler::new(TrackerConfig::with_full()).with_budget(budget);
        run(COUNTER_STORES, &mut governed);
        let stats = *governed.governor_stats().unwrap();
        assert!(stats.entities_degraded > 0);
        assert!(stats.bytes_peak <= budget.limit_bytes() as u64);
        for truth in plain.metrics() {
            let Some(m) = governed.metrics().into_iter().find(|m| m.id == truth.id) else {
                continue; // location evicted (rung 2)
            };
            assert_eq!(m.executions, truth.executions, "location {:#x}", truth.id);
            assert_eq!(m.inv_top1, truth.inv_top1, "location {:#x}", truth.id);
            assert_eq!(m.lvp, truth.lvp, "location {:#x}", truth.id);
        }
    }
}
