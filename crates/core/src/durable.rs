//! Crash-safe persistence: atomic writes, integrity-footered profile
//! files, and torn-tail recovery for append-only JSONL logs.
//!
//! Every file the toolchain writes goes through one of three shapes:
//!
//! * **Atomic replace** ([`write_atomic`]) — write a sibling `*.tmp`
//!   file, fsync it, then `rename` over the target and fsync the
//!   directory. A crash at any point leaves either the old file or the
//!   new file, never a torn mixture.
//! * **Footered profiles** ([`write_profile`] / [`parse_profile_checked`])
//!   — the TSV profile gains a trailing comment line
//!   `#vp-crc32 <hex> <rows>` carrying a CRC32 of everything above it and
//!   the row count. Loads verify the footer: strict mode refuses a file
//!   whose checksum does not match (bit rot, truncation, partial copy);
//!   lenient mode salvages the rows that still parse and reports what was
//!   recovered.
//! * **Recovering appends** ([`append_jsonl`]) — before appending, a
//!   final partial line (the signature of a crash mid-append) is
//!   truncated away, so the log converges back to "every line is a
//!   complete record" instead of poisoning all future reads.
//!
//! Each operation consults a [`FaultPlan`](crate::fault::FaultPlan) at
//! named fault points (`durable/tmp-written`, `durable/append`), which is
//! how the fault-injection tests prove the guarantees above without
//! actually crashing the test process. The plain entry points use the
//! process-global plan from `$VP_FAULTS`; the `*_with` variants take an
//! explicit plan so parallel tests stay isolated.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::Path;

use crate::fault::{self, FaultPlan};
use crate::metrics::EntityMetrics;
use crate::profile_io::{self, render_profile, ParseProfileError};

/// Marker beginning the profile integrity footer line.
pub const FOOTER_PREFIX: &str = "#vp-crc32";

// The CRC32 implementation lives in `vp_obs::crc` (the bottom of the
// dependency order) so the binary trace codec in `vp-instrument` can
// share it; re-exported here to keep `vp_core::durable::crc32` stable.
pub use vp_obs::crc::crc32;

// ---------------------------------------------------------------------
// Atomic replace
// ---------------------------------------------------------------------

fn sync_parent_dir(path: &Path) {
    // Persisting the rename needs a directory fsync; best-effort because
    // some filesystems refuse to open directories.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(f) = File::open(dir) {
            let _ = f.sync_all();
        }
    }
}

/// Writes `bytes` to `path` atomically: a crash leaves either the old
/// content or the new, never a prefix. Uses the global `$VP_FAULTS` plan.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(fault::global(), path, bytes)
}

/// [`write_atomic`] with an explicit fault plan (fault point
/// `durable/tmp-written`, between the tmp-file fsync and the rename).
pub fn write_atomic_with(plan: &FaultPlan, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        plan.fire("durable/tmp-written")?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

// ---------------------------------------------------------------------
// Footered profile files
// ---------------------------------------------------------------------

/// Renders metrics as profile TSV with the trailing integrity footer.
pub fn render_profile_durable(metrics: &[EntityMetrics]) -> String {
    let body = render_profile(metrics);
    format!("{body}{FOOTER_PREFIX} {:08x} {}\n", crc32(body.as_bytes()), metrics.len())
}

/// Writes a footered profile file atomically.
pub fn write_profile(path: &Path, metrics: &[EntityMetrics]) -> io::Result<()> {
    write_profile_with(fault::global(), path, metrics)
}

/// [`write_profile`] with an explicit fault plan.
pub fn write_profile_with(
    plan: &FaultPlan,
    path: &Path,
    metrics: &[EntityMetrics],
) -> io::Result<()> {
    write_atomic_with(plan, path, render_profile_durable(metrics).as_bytes())
}

/// How strictly [`parse_profile_checked`] treats integrity problems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityMode {
    /// The footer must be present and match: checksum, row count, and
    /// every row must parse. Anything else is an error.
    Strict,
    /// Salvage what parses; report the damage in
    /// [`CheckedProfile::integrity`].
    Lenient,
}

/// What an integrity-checked load found out about the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Integrity {
    /// Footer present, checksum and row count match, all rows parsed.
    Verified {
        /// Rows loaded.
        rows: usize,
    },
    /// No (intact) footer — a legacy file, or one truncated past its
    /// footer. Only reported in lenient mode.
    Unverified {
        /// Rows recovered.
        rows: usize,
        /// Data lines dropped because they did not parse.
        dropped: usize,
    },
    /// Footer present but the content does not match it. Only reported
    /// in lenient mode.
    Corrupt {
        /// Rows recovered.
        rows: usize,
        /// Data lines dropped because they did not parse.
        dropped: usize,
        /// Checksum the footer promised.
        expected_crc: u32,
        /// Checksum of the content actually on disk.
        actual_crc: u32,
    },
}

impl Integrity {
    /// Rows that made it into [`CheckedProfile::metrics`].
    pub fn rows(&self) -> usize {
        match *self {
            Integrity::Verified { rows }
            | Integrity::Unverified { rows, .. }
            | Integrity::Corrupt { rows, .. } => rows,
        }
    }

    /// Whether the file verified clean.
    pub fn is_verified(&self) -> bool {
        matches!(self, Integrity::Verified { .. })
    }
}

impl fmt::Display for Integrity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Integrity::Verified { rows } => write!(f, "verified ({rows} rows)"),
            Integrity::Unverified { rows, dropped } => {
                write!(f, "no integrity footer: recovered {rows} rows, dropped {dropped}")
            }
            Integrity::Corrupt { rows, dropped, expected_crc, actual_crc } => write!(
                f,
                "crc32 mismatch (footer {expected_crc:08x}, content {actual_crc:08x}): \
                 recovered {rows} rows, dropped {dropped}"
            ),
        }
    }
}

/// A profile load with its integrity verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedProfile {
    /// The rows that loaded (all of them in strict mode).
    pub metrics: Vec<EntityMetrics>,
    /// What the integrity check concluded.
    pub integrity: Integrity,
}

struct Footer {
    expected_crc: u32,
    expected_rows: usize,
    /// Byte offset where the footer line begins (= length of the body).
    body_len: usize,
}

/// Locates and parses the trailing footer. `Ok(None)` = no footer at all;
/// `Err` = a line that starts like a footer but does not parse (corrupt).
fn find_footer(text: &str) -> Result<Option<Footer>, ParseProfileError> {
    // The footer must be the final non-empty line.
    let Some(last) = text.lines().rev().find(|l| !l.trim().is_empty()) else {
        return Ok(None);
    };
    if !last.starts_with('#') {
        return Ok(None);
    }
    let body_len = last.as_ptr() as usize - text.as_ptr() as usize;
    let corrupt = |msg: &str| ParseProfileError { line: 0, message: msg.to_string() };
    if !last.starts_with(FOOTER_PREFIX) {
        // Some other comment in footer position: treat as no footer.
        return Ok(None);
    }
    let mut fields = last.split_whitespace();
    fields.next(); // the marker
    let crc = fields.next().and_then(|f| u32::from_str_radix(f, 16).ok());
    let rows = fields.next().and_then(|f| f.parse::<usize>().ok());
    match (crc, rows, fields.next()) {
        (Some(expected_crc), Some(expected_rows), None) => {
            Ok(Some(Footer { expected_crc, expected_rows, body_len }))
        }
        _ => Err(corrupt("corrupt integrity footer")),
    }
}

/// Parses a profile with its integrity footer.
///
/// Strict mode errors on a missing or corrupt footer, a CRC32 or
/// row-count mismatch, and any malformed row. Lenient mode instead
/// recovers every row that parses (first occurrence wins on duplicate
/// ids) and reports the damage; it only fails when the header itself is
/// missing, because then nothing identifies the file as a profile.
pub fn parse_profile_checked(
    text: &str,
    mode: IntegrityMode,
) -> Result<CheckedProfile, ParseProfileError> {
    let footer = match (find_footer(text), mode) {
        (Ok(f), _) => f,
        (Err(e), IntegrityMode::Strict) => return Err(e),
        (Err(_), IntegrityMode::Lenient) => None,
    };

    let verdict = footer.as_ref().map(|f| {
        let actual_crc = crc32(&text.as_bytes()[..f.body_len]);
        (f.expected_crc, actual_crc)
    });

    if mode == IntegrityMode::Strict {
        let Some(footer) = footer else {
            return Err(ParseProfileError {
                line: 0,
                message: "missing integrity footer (truncated or pre-durability file?)".to_string(),
            });
        };
        let (expected, actual) = verdict.expect("footer present");
        if expected != actual {
            return Err(ParseProfileError {
                line: 0,
                message: format!(
                    "crc32 mismatch: footer says {expected:08x}, content is {actual:08x}"
                ),
            });
        }
        let metrics = crate::parse_profile(text)?;
        if metrics.len() != footer.expected_rows {
            return Err(ParseProfileError {
                line: 0,
                message: format!(
                    "row count mismatch: footer says {}, parsed {}",
                    footer.expected_rows,
                    metrics.len()
                ),
            });
        }
        let rows = metrics.len();
        return Ok(CheckedProfile { metrics, integrity: Integrity::Verified { rows } });
    }

    // Lenient: salvage row by row.
    let mut metrics: Vec<EntityMetrics> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut dropped = 0usize;
    for (line, raw) in profile_io::check_header(text)? {
        if profile_io::is_skippable(raw) {
            continue;
        }
        match profile_io::parse_row(raw, line) {
            Ok(m) if seen.insert(m.id) => metrics.push(m),
            _ => dropped += 1,
        }
    }
    let rows = metrics.len();
    let footer_rows = footer.as_ref().map(|f| f.expected_rows);
    let integrity = match verdict {
        Some((expected, actual))
            if expected == actual && dropped == 0 && footer_rows == Some(rows) =>
        {
            Integrity::Verified { rows }
        }
        Some((expected_crc, actual_crc)) => {
            Integrity::Corrupt { rows, dropped, expected_crc, actual_crc }
        }
        None => Integrity::Unverified { rows, dropped },
    };
    Ok(CheckedProfile { metrics, integrity })
}

/// Error loading a profile from disk: I/O or integrity/parse failure.
#[derive(Debug)]
pub enum LoadProfileError {
    /// Reading the file failed.
    Io(io::Error),
    /// The content failed parsing or integrity verification.
    Parse(ParseProfileError),
}

impl fmt::Display for LoadProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadProfileError::Io(e) => write!(f, "{e}"),
            LoadProfileError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadProfileError {}

/// Reads and integrity-checks a profile file.
pub fn load_profile(path: &Path, mode: IntegrityMode) -> Result<CheckedProfile, LoadProfileError> {
    let text = std::fs::read_to_string(path).map_err(LoadProfileError::Io)?;
    parse_profile_checked(&text, mode).map_err(LoadProfileError::Parse)
}

// ---------------------------------------------------------------------
// Recovering JSONL append
// ---------------------------------------------------------------------

/// Appends `text` (pre-rendered JSONL, newline-terminated) to `path`,
/// first truncating away a torn final line left by an earlier crash.
/// Returns the number of recovered (dropped) bytes. Durable: the append
/// is fsynced before returning. Uses the global `$VP_FAULTS` plan.
pub fn append_jsonl(path: &Path, text: &str) -> io::Result<u64> {
    append_jsonl_with(fault::global(), path, text)
}

/// [`append_jsonl`] with an explicit fault plan (fault point
/// `durable/append`, before anything is written).
pub fn append_jsonl_with(plan: &FaultPlan, path: &Path, text: &str) -> io::Result<u64> {
    plan.fire("durable/append")?;
    let mut file =
        OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
    let mut existing = Vec::new();
    file.read_to_end(&mut existing)?;
    // A complete log ends in a newline; anything after the last newline
    // is a partial record from a torn write.
    let keep = match existing.iter().rposition(|&b| b == b'\n') {
        Some(last_newline) => last_newline as u64 + 1,
        None => 0,
    };
    let dropped = existing.len() as u64 - keep;
    if dropped > 0 {
        file.set_len(keep)?;
    }
    file.seek(io::SeekFrom::Start(keep))?;
    file.write_all(text.as_bytes())?;
    file.sync_all()?;
    Ok(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("vp_durable_tests").join(name);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Vec<EntityMetrics> {
        vec![
            EntityMetrics {
                id: 3,
                executions: 1000,
                lvp: 0.125,
                inv_top1: 0.5,
                inv_topn: 0.75,
                inv_all1: Some(0.5),
                inv_alln: Some(1.0),
                pct_zero: 0.0625,
                distinct: Some(17),
                top_value: Some(u64::MAX),
            },
            EntityMetrics {
                id: 9,
                executions: 1,
                lvp: 0.0,
                inv_top1: 1.0,
                inv_topn: 1.0,
                inv_all1: None,
                inv_alln: None,
                pct_zero: 1.0,
                distinct: None,
                top_value: None,
            },
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn atomic_write_replaces_and_survives_injected_failure() {
        let dir = tmp_dir("atomic");
        let path = dir.join("out.txt");
        write_atomic_with(&FaultPlan::empty(), &path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // An injected failure between tmp write and rename must leave the
        // old content intact and clean up the tmp file.
        let plan = FaultPlan::parse("err:durable/tmp-written").unwrap();
        let err = write_atomic_with(&plan, &path, b"second").unwrap_err();
        assert!(err.to_string().contains("fault injected"));
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        assert!(!dir.join("out.txt.tmp").exists(), "tmp file cleaned up");
        // The next (un-faulted) write goes through.
        write_atomic_with(&FaultPlan::empty(), &path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
    }

    #[test]
    fn footered_profile_round_trips_verified() {
        let text = render_profile_durable(&sample());
        assert!(text.lines().last().unwrap().starts_with(FOOTER_PREFIX));
        for mode in [IntegrityMode::Strict, IntegrityMode::Lenient] {
            let checked = parse_profile_checked(&text, mode).unwrap();
            assert_eq!(checked.metrics, sample());
            assert_eq!(checked.integrity, Integrity::Verified { rows: 2 });
        }
        // The plain parser also reads footered files (skips the comment).
        assert_eq!(crate::parse_profile(&text).unwrap(), sample());
    }

    #[test]
    fn bit_flip_is_detected() {
        let good = render_profile_durable(&sample());
        // Flip a digit inside a data row: still parses, but checksum lies.
        let bad = good.replacen("1000", "1001", 1);
        assert_ne!(good, bad);
        let err = parse_profile_checked(&bad, IntegrityMode::Strict).unwrap_err();
        assert!(err.message.contains("crc32 mismatch"), "{err}");
        let checked = parse_profile_checked(&bad, IntegrityMode::Lenient).unwrap();
        assert_eq!(checked.integrity.rows(), 2);
        match checked.integrity {
            Integrity::Corrupt { expected_crc, actual_crc, .. } => {
                assert_ne!(expected_crc, actual_crc)
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_detected_and_salvaged() {
        let good = render_profile_durable(&sample());
        // Cut mid-way through the second data row (and lose the footer).
        let cut = good.len() - 40;
        let truncated = &good[..cut];
        let err = parse_profile_checked(truncated, IntegrityMode::Strict).unwrap_err();
        assert!(err.message.contains("integrity footer"), "{err}");
        let checked = parse_profile_checked(truncated, IntegrityMode::Lenient).unwrap();
        assert_eq!(checked.integrity, Integrity::Unverified { rows: 1, dropped: 1 });
        assert_eq!(checked.metrics, sample()[..1]);
    }

    #[test]
    fn legacy_file_without_footer() {
        let legacy = render_profile(&sample());
        assert!(parse_profile_checked(&legacy, IntegrityMode::Strict).is_err());
        let checked = parse_profile_checked(&legacy, IntegrityMode::Lenient).unwrap();
        assert_eq!(checked.metrics, sample());
        assert_eq!(checked.integrity, Integrity::Unverified { rows: 2, dropped: 0 });
    }

    #[test]
    fn load_profile_from_disk() {
        let dir = tmp_dir("load");
        let path = dir.join("p.tsv");
        write_profile_with(&FaultPlan::empty(), &path, &sample()).unwrap();
        let checked = load_profile(&path, IntegrityMode::Strict).unwrap();
        assert!(checked.integrity.is_verified());
        assert!(load_profile(&dir.join("missing.tsv"), IntegrityMode::Strict).is_err());
    }

    #[test]
    fn append_recovers_torn_tail() {
        let dir = tmp_dir("append");
        let path = dir.join("log.jsonl");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::empty();
        append_jsonl_with(&plan, &path, "{\"a\":1}\n{\"b\":2}\n").unwrap();
        // Simulate a crash mid-append: a partial third record, no newline.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(b"{\"c\":");
        std::fs::write(&path, &raw).unwrap();
        let dropped = append_jsonl_with(&plan, &path, "{\"d\":4}\n").unwrap();
        assert_eq!(dropped, 5);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n{\"d\":4}\n");
        // Injected failure at the append fault point.
        let faulty = FaultPlan::parse("err:durable/append").unwrap();
        assert!(append_jsonl_with(&faulty, &path, "{\"e\":5}\n").is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text, "file untouched");
    }
}
