//! The procedure parameter / return-value profiler.
//!
//! Semi-invariant procedure arguments are the paper's primary hook for
//! code specialization (Chapter X): a procedure whose argument is nearly
//! always the same value can be cloned and specialized on that value
//! behind a cheap guard.

use std::collections::HashMap;

use vp_instrument::Analysis;
use vp_sim::Machine;

use crate::metrics::{aggregate, Aggregate, EntityMetrics};
use crate::track::{TrackerConfig, ValueTracker};

/// Identifies one profiled parameter slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParamSlot {
    /// The `i`-th argument register (`a0`..`a3`).
    Arg(u8),
    /// The return value (`v0`).
    Ret,
}

/// Metrics of one (procedure, slot) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamMetrics {
    /// Procedure index (position in the program's procedure table).
    pub proc_index: usize,
    /// Which slot.
    pub slot: ParamSlot,
    /// The slot's value metrics.
    pub metrics: EntityMetrics,
}

/// Profiles procedure arguments and return values.
///
/// By default the first `arity` argument registers of every procedure are
/// profiled (VP64 has four); override per procedure with
/// [`set_arity`](ParamProfiler::set_arity) when the true arity is known so
/// dead argument registers don't pollute the profile.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use vp_core::params::{ParamProfiler, ParamSlot};
/// use vp_core::track::TrackerConfig;
/// use vp_instrument::{Instrumenter, Selection};
/// use vp_sim::MachineConfig;
///
/// let program = vp_asm::assemble(
///     r#"
///     .text
///     main:
///         li r9, 10
///     loop:
///         li a0, 3              # the argument is always 3
///         call f
///         addi r9, r9, -1
///         bnz r9, loop
///         sys exit
///     .proc f
///     f:
///         add v0, a0, a0
///         ret
///     .endp
///     "#,
/// )?;
/// let mut profiler = ParamProfiler::new(TrackerConfig::with_full(), 1);
/// Instrumenter::new()
///     .select(Selection::None)
///     .with_procedures(true)
///     .run(&program, MachineConfig::new(), 100_000, &mut profiler)?;
/// let rows = profiler.metrics();
/// let arg0 = rows.iter().find(|r| r.slot == ParamSlot::Arg(0)).unwrap();
/// assert!((arg0.metrics.inv_top1 - 1.0).abs() < 1e-12);
/// assert_eq!(arg0.metrics.executions, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParamProfiler {
    config: TrackerConfig,
    default_arity: u8,
    arity: HashMap<usize, u8>,
    trackers: HashMap<(usize, ParamSlot), ValueTracker>,
}

impl ParamProfiler {
    /// Creates a profiler that tracks `default_arity` argument registers
    /// per procedure (clamped to 4) plus every return value.
    pub fn new(config: TrackerConfig, default_arity: u8) -> ParamProfiler {
        ParamProfiler {
            config,
            default_arity: default_arity.min(4),
            arity: HashMap::new(),
            trackers: HashMap::new(),
        }
    }

    /// Overrides the profiled arity for one procedure.
    pub fn set_arity(&mut self, proc_index: usize, arity: u8) {
        self.arity.insert(proc_index, arity.min(4));
    }

    /// Tracker for one (procedure, slot) pair.
    pub fn tracker(&self, proc_index: usize, slot: ParamSlot) -> Option<&ValueTracker> {
        self.trackers.get(&(proc_index, slot))
    }

    /// Metrics for every profiled slot, ordered by procedure then slot.
    pub fn metrics(&self) -> Vec<ParamMetrics> {
        let mut keys: Vec<&(usize, ParamSlot)> = self.trackers.keys().collect();
        keys.sort();
        keys.into_iter()
            .map(|&(proc_index, slot)| ParamMetrics {
                proc_index,
                slot,
                metrics: EntityMetrics::from_tracker(
                    encode_id(proc_index, slot),
                    &self.trackers[&(proc_index, slot)],
                    self.config.capacity,
                ),
            })
            .collect()
    }

    /// Merges another parameter profiler (a later shard of the workload)
    /// into this one: shared (procedure, slot) trackers merge per
    /// [`ValueTracker::merge`], others move over. Arity overrides combine
    /// with this profiler's taking precedence on conflict.
    ///
    /// # Panics
    ///
    /// Panics if the tracker configurations or default arities differ.
    pub fn merge(&mut self, other: ParamProfiler) {
        assert_eq!(
            self.config, other.config,
            "cannot merge param profilers with different tracker configs"
        );
        assert_eq!(
            self.default_arity, other.default_arity,
            "cannot merge param profilers with different default arity"
        );
        for (proc_index, arity) in other.arity {
            self.arity.entry(proc_index).or_insert(arity);
        }
        for (key, theirs) in other.trackers {
            match self.trackers.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(theirs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&theirs),
            }
        }
    }

    /// Execution-weighted aggregate over all argument slots (returns
    /// excluded, matching the paper's parameter table).
    pub fn aggregate_args(&self) -> Aggregate {
        let ms: Vec<EntityMetrics> = self
            .metrics()
            .into_iter()
            .filter(|p| matches!(p.slot, ParamSlot::Arg(_)))
            .map(|p| p.metrics)
            .collect();
        aggregate(&ms)
    }

    /// Summed TNV-table events across all parameter-slot trackers.
    pub fn tnv_events(&self) -> vp_obs::TnvEvents {
        let mut out = vp_obs::TnvEvents::default();
        for tracker in self.trackers.values() {
            out.merge(&tracker.tnv_events());
        }
        out
    }
}

fn encode_id(proc_index: usize, slot: ParamSlot) -> u64 {
    let s = match slot {
        ParamSlot::Arg(i) => u64::from(i),
        ParamSlot::Ret => 15,
    };
    (proc_index as u64) << 4 | s
}

impl Analysis for ParamProfiler {
    fn on_proc_entry(&mut self, _machine: &Machine, proc_index: usize, args: [u64; 4]) {
        let arity = self.arity.get(&proc_index).copied().unwrap_or(self.default_arity);
        for (i, &value) in args.iter().enumerate().take(usize::from(arity)) {
            self.trackers
                .entry((proc_index, ParamSlot::Arg(i as u8)))
                .or_insert_with(|| ValueTracker::new(self.config))
                .observe(value);
        }
    }

    fn on_proc_exit(&mut self, _machine: &Machine, proc_index: usize, ret: u64) {
        self.trackers
            .entry((proc_index, ParamSlot::Ret))
            .or_insert_with(|| ValueTracker::new(self.config))
            .observe(ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_instrument::{Instrumenter, Selection};
    use vp_sim::MachineConfig;

    const TWO_PROCS: &str = r#"
        .text
        main:
            li r9, 6
        loop:
            mov a0, r9           # varying argument
            call id
            li  a0, 42           # constant argument
            li  a1, 9
            call pair
            addi r9, r9, -1
            bnz r9, loop
            sys exit
        .proc id
        id:
            mov v0, a0
            ret
        .endp
        .proc pair
        pair:
            add v0, a0, a1
            ret
        .endp
    "#;

    fn run(arity: u8) -> ParamProfiler {
        let program = vp_asm::assemble(TWO_PROCS).unwrap();
        let mut p = ParamProfiler::new(TrackerConfig::with_full(), arity);
        Instrumenter::new()
            .select(Selection::None)
            .with_procedures(true)
            .run(&program, MachineConfig::new(), 100_000, &mut p)
            .unwrap();
        p
    }

    #[test]
    fn per_proc_and_slot_tracking() {
        let p = run(2);
        // proc 0 = id, proc 1 = pair; 2 arg slots + ret each.
        let rows = p.metrics();
        assert_eq!(rows.len(), 6);
        let id_arg = p.tracker(0, ParamSlot::Arg(0)).unwrap();
        assert_eq!(id_arg.executions(), 6);
        assert_eq!(id_arg.distinct(), Some(6)); // varying
        let pair_arg = p.tracker(1, ParamSlot::Arg(0)).unwrap();
        assert!((pair_arg.inv_top(1) - 1.0).abs() < 1e-12); // constant 42
        let pair_ret = p.tracker(1, ParamSlot::Ret).unwrap();
        assert!((pair_ret.inv_top(1) - 1.0).abs() < 1e-12); // always 51
    }

    #[test]
    fn arity_override() {
        let program = vp_asm::assemble(TWO_PROCS).unwrap();
        let mut p = ParamProfiler::new(TrackerConfig::default(), 4);
        p.set_arity(0, 1);
        p.set_arity(1, 2);
        Instrumenter::new()
            .select(Selection::None)
            .with_procedures(true)
            .run(&program, MachineConfig::new(), 100_000, &mut p)
            .unwrap();
        assert!(p.tracker(0, ParamSlot::Arg(1)).is_none());
        assert!(p.tracker(1, ParamSlot::Arg(1)).is_some());
        assert!(p.tracker(1, ParamSlot::Arg(2)).is_none());
    }

    #[test]
    fn aggregate_excludes_returns() {
        let p = run(1);
        let agg = p.aggregate_args();
        // id's arg (6 distinct values) + pair's arg (constant): 12 executions.
        assert_eq!(agg.executions, 12);
        assert!(agg.inv_top1 > 0.4 && agg.inv_top1 < 0.8);
    }

    #[test]
    fn metric_ids_unique() {
        let p = run(4);
        let rows = p.metrics();
        let mut ids: Vec<u64> = rows.iter().map(|r| r.metrics.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
