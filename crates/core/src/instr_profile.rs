//! The instruction value profiler: one [`ValueTracker`] per profiled
//! instruction, fed from the instrumentation layer.
//!
//! This is the paper's core tool. Pair it with
//! [`Selection::LoadsOnly`](vp_instrument::Selection) for the load-value
//! profile (experiment E2) or
//! [`Selection::RegisterDefining`](vp_instrument::Selection) for the
//! all-instructions profile (E3).

use std::collections::HashMap;

use vp_instrument::Analysis;
use vp_sim::{InstrEvent, Machine};

use crate::arena::Arena;
use crate::govern::{Governor, GovernorStats, MemBudget};
use crate::metrics::{aggregate, Aggregate, EntityMetrics};
use crate::track::{TrackerConfig, ValueTracker};

/// Profiles destination-register values of instrumented instructions.
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use vp_core::InstructionProfiler;
/// use vp_core::track::TrackerConfig;
/// use vp_instrument::{Instrumenter, Selection};
/// use vp_sim::MachineConfig;
///
/// let program = vp_asm::assemble(
///     r#"
///     .text
///     main:
///         li r1, 100
///     loop:
///         addi r2, r0, 7        # always produces 7: fully invariant
///         addi r1, r1, -1       # loop counter: all values distinct
///         bnz  r1, loop
///         sys  exit
///     "#,
/// )?;
/// let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
/// Instrumenter::new()
///     .select(Selection::RegisterDefining)
///     .run(&program, MachineConfig::new(), 100_000, &mut profiler)?;
/// let constant = profiler.metrics_for(1).unwrap();   // the `addi r2` at index 1
/// assert!((constant.inv_top1 - 1.0).abs() < 1e-9);
/// let counter = profiler.metrics_for(2).unwrap();
/// assert!(counter.inv_top1 < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InstructionProfiler {
    config: TrackerConfig,
    trackers: HashMap<u32, ValueTracker>,
    governor: Option<Governor>,
}

impl InstructionProfiler {
    /// Creates a profiler; each instruction gets a tracker configured by
    /// `config` the first time it executes.
    pub fn new(config: TrackerConfig) -> InstructionProfiler {
        InstructionProfiler { config, trackers: HashMap::new(), governor: None }
    }

    /// Creates a profiler whose resident tracker state is governed by
    /// `budget`: when ingest pushes the estimated footprint over the
    /// budget, entities walk the degradation ladder (full profile → TNV
    /// only → dropped; see [`crate::govern`]). Under a budget the
    /// profiler never exceeds, behavior is identical to
    /// [`new`](InstructionProfiler::new).
    pub fn with_budget(config: TrackerConfig, budget: MemBudget) -> InstructionProfiler {
        InstructionProfiler {
            config,
            trackers: HashMap::new(),
            governor: Some(Governor::new(budget)),
        }
    }

    /// The governor's intervention counters, when a budget is in force.
    pub fn governor_stats(&self) -> Option<&GovernorStats> {
        self.governor.as_ref().map(Governor::stats)
    }

    /// The governor's arena byte meter, when a budget is in force —
    /// `bytes_peak` in the stats equals its high-water mark exactly.
    pub fn arena(&self) -> Option<&Arena> {
        self.governor.as_ref().map(Governor::arena)
    }

    /// The tracker of one instruction, if it ever executed.
    pub fn tracker(&self, index: u32) -> Option<&ValueTracker> {
        self.trackers.get(&index)
    }

    /// Metric snapshot of one instruction.
    pub fn metrics_for(&self, index: u32) -> Option<EntityMetrics> {
        self.trackers
            .get(&index)
            .map(|t| EntityMetrics::from_tracker(u64::from(index), t, self.config.capacity))
    }

    /// Metric snapshots of every profiled instruction, ordered by index.
    pub fn metrics(&self) -> Vec<EntityMetrics> {
        let mut out: Vec<EntityMetrics> = self
            .trackers
            .iter()
            .map(|(&i, t)| EntityMetrics::from_tracker(u64::from(i), t, self.config.capacity))
            .collect();
        out.sort_by_key(|m| m.id);
        out
    }

    /// Execution-weighted aggregate over all profiled instructions.
    pub fn aggregate(&self) -> Aggregate {
        aggregate(&self.metrics())
    }

    /// Feeds one `(instruction, value)` event directly — the trace-replay
    /// entry point; the [`Analysis`] callback delegates here.
    pub fn observe(&mut self, index: u32, value: u64) {
        let config = self.config;
        if let Some(governor) = &mut self.governor {
            governor.observe(&mut self.trackers, config, index, value);
            return;
        }
        self.trackers.entry(index).or_insert_with(|| ValueTracker::new(config)).observe(value);
    }

    /// Feeds a batch of `(instruction, value)` events — semantically
    /// identical to calling [`observe`](InstructionProfiler::observe) once
    /// per event, but consecutive events of the same instruction (the
    /// common shape of a loop's hot load) resolve one hash-map lookup for
    /// the whole run and take the tracker's batched fast path.
    ///
    /// Under a governor the batch degenerates to the per-event path, so
    /// budget enforcement happens at exactly the same points as a scalar
    /// feed — governed batch and scalar ingestion stay bit-identical.
    pub fn observe_batch(&mut self, events: &[(u32, u64)]) {
        if self.governor.is_some() {
            for &(index, value) in events {
                self.observe(index, value);
            }
            return;
        }
        let config = self.config;
        let mut values: Vec<u64> = Vec::new();
        let mut i = 0;
        while i < events.len() {
            let index = events[i].0;
            let mut j = i + 1;
            while j < events.len() && events[j].0 == index {
                j += 1;
            }
            let tracker = self.trackers.entry(index).or_insert_with(|| ValueTracker::new(config));
            if j == i + 1 {
                tracker.observe(events[i].1);
            } else {
                values.clear();
                values.extend(events[i..j].iter().map(|&(_, value)| value));
                tracker.observe_batch(&values);
            }
            i = j;
        }
    }

    /// Merges another instruction profiler (e.g. the same program run on a
    /// different input, or a later shard of the same run) into this one.
    ///
    /// Instructions profiled by only one side move over unchanged; shared
    /// instructions merge per [`ValueTracker::merge`] with `other` treated
    /// as the later shard. Scalar counters and full profiles combine
    /// exactly; TNV estimates remain under-estimates.
    ///
    /// # Panics
    ///
    /// Panics if the tracker configurations differ, or if one side is
    /// governed and the other is not.
    pub fn merge(&mut self, other: InstructionProfiler) {
        assert_eq!(
            self.config, other.config,
            "cannot merge instruction profilers with different tracker configs"
        );
        assert_eq!(
            self.governor.is_some(),
            other.governor.is_some(),
            "cannot merge governed and ungoverned instruction profilers"
        );
        let InstructionProfiler { trackers: other_trackers, governor: other_governor, .. } = other;
        for (index, theirs) in other_trackers {
            match self.trackers.entry(index) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(theirs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(&theirs),
            }
        }
        if let (Some(governor), Some(theirs)) = (&mut self.governor, &other_governor) {
            // Merged shard results may exceed a per-shard budget; the
            // governor resumes enforcing only if ingest continues.
            let resident = self.trackers.values().map(ValueTracker::footprint_bytes).sum();
            governor.absorb(theirs, resident);
        }
    }

    /// Number of distinct instructions profiled.
    pub fn profiled_instructions(&self) -> usize {
        self.trackers.len()
    }

    /// The tracker configuration in force.
    pub fn config(&self) -> TrackerConfig {
        self.config
    }

    /// Estimated total profiler footprint in bytes across all trackers —
    /// constant per instruction under a pure TNV configuration, growing
    /// with distinct values when the exact histogram is kept.
    pub fn footprint_bytes(&self) -> usize {
        self.trackers.values().map(ValueTracker::footprint_bytes).sum()
    }

    /// Summed TNV-table events across all instruction trackers.
    pub fn tnv_events(&self) -> vp_obs::TnvEvents {
        let mut out = vp_obs::TnvEvents::default();
        for tracker in self.trackers.values() {
            out.merge(&tracker.tnv_events());
        }
        out
    }
}

impl Analysis for InstructionProfiler {
    fn after_instr(&mut self, _machine: &Machine, event: &InstrEvent) {
        if let Some((_, value)) = event.dest {
            self.observe(event.index, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_instrument::{Instrumenter, Selection};
    use vp_sim::MachineConfig;

    const LOOP: &str = r#"
        .data
        x: .quad 11
        .text
        main:
            li  r9, 50
            la  r8, x
        loop:
            ldd r2, 0(r8)        # always loads 11
            addi r9, r9, -1
            bnz r9, loop
            sys exit
    "#;

    fn run(selection: Selection) -> InstructionProfiler {
        let program = vp_asm::assemble(LOOP).unwrap();
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(selection)
            .run(&program, MachineConfig::new(), 100_000, &mut profiler)
            .unwrap();
        profiler
    }

    #[test]
    fn loads_only_profiles_one_instruction() {
        let p = run(Selection::LoadsOnly);
        assert_eq!(p.profiled_instructions(), 1);
        let m = &p.metrics()[0];
        assert_eq!(m.executions, 50);
        assert!((m.inv_top1 - 1.0).abs() < 1e-12);
        assert_eq!(m.top_value, Some(11));
        assert_eq!(m.distinct, Some(1));
    }

    #[test]
    fn register_defining_covers_alu_and_loads() {
        let p = run(Selection::RegisterDefining);
        // li (1) + la (2) + ldd (1) + addi (1) = 5 defining instructions.
        assert_eq!(p.profiled_instructions(), 5);
        let agg = p.aggregate();
        assert!(agg.executions > 100);
        assert!(agg.inv_top1 > 0.0 && agg.inv_top1 <= 1.0);
        // The loop counter has 50 distinct values; the load has 1.
        let ms = p.metrics();
        let counter = ms.iter().find(|m| m.distinct == Some(50)).unwrap();
        assert!(counter.inv_top1 < 0.1);
    }

    #[test]
    fn generous_budget_changes_nothing() {
        use crate::govern::MemBudget;
        let events: Vec<(u32, u64)> =
            (0..4000u32).map(|i| (i % 13, u64::from(i % 31) * 7)).collect();
        let mut plain = InstructionProfiler::new(TrackerConfig::with_full());
        plain.observe_batch(&events);
        let mut governed =
            InstructionProfiler::with_budget(TrackerConfig::with_full(), MemBudget::mib(64));
        governed.observe_batch(&events);
        assert_eq!(governed.metrics(), plain.metrics());
        assert_eq!(governed.tnv_events(), plain.tnv_events());
        let stats = governed.governor_stats().unwrap();
        assert!(!stats.intervened());
        assert_eq!(stats.bytes_peak as usize, governed.footprint_bytes());
    }

    #[test]
    fn tight_budget_degrades_but_keeps_tnv_metrics_exact() {
        use crate::govern::MemBudget;
        let events: Vec<(u32, u64)> =
            (0..20_000u32).map(|i| (i % 5, u64::from(i).wrapping_mul(2654435761) % 4096)).collect();
        let mut plain = InstructionProfiler::new(TrackerConfig::with_full());
        plain.observe_batch(&events);
        let budget = MemBudget::bytes(16 * 1024);
        let mut governed = InstructionProfiler::with_budget(TrackerConfig::with_full(), budget);
        governed.observe_batch(&events);
        let stats = *governed.governor_stats().unwrap();
        assert!(stats.entities_degraded > 0);
        assert!(stats.bytes_peak <= budget.limit_bytes() as u64);
        for truth in plain.metrics() {
            let Some(m) = governed.metrics_for(truth.id as u32) else {
                continue; // entity dropped entirely (rung 2)
            };
            assert_eq!(m.executions, truth.executions, "entity {}", truth.id);
            assert_eq!(m.inv_top1, truth.inv_top1, "entity {}", truth.id);
            assert_eq!(m.lvp, truth.lvp, "entity {}", truth.id);
        }
    }

    #[test]
    fn stores_produce_no_samples() {
        let src = ".data\nx: .quad 0\n.text\nmain: la r8, x\n std r0, 0(r8)\n sys exit\n";
        let program = vp_asm::assemble(src).unwrap();
        let mut p = InstructionProfiler::new(TrackerConfig::default());
        Instrumenter::new()
            .select(Selection::All)
            .run(&program, MachineConfig::new(), 1000, &mut p)
            .unwrap();
        // la defines r8 twice (lui+ori); store and sys define nothing.
        assert_eq!(p.profiled_instructions(), 2);
        assert!(p.tracker(2).is_none());
        assert!(p.metrics_for(0).is_some());
    }
}
