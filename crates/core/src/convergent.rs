//! The convergent ("intelligent") sampling profiler.
//!
//! Full value profiling runs analysis code at every instruction, which the
//! paper measured as a substantial slowdown. Its remedy: profile each
//! instruction in *bursts*; once an instruction's invariance stops changing
//! between bursts (it has **converged**), back off — skip a geometrically
//! growing number of executions before the next burst. Unconverged
//! instructions keep being profiled at full rate.
//!
//! The profiler reports exactly how many executions it profiled versus how
//! many occurred, which is the machine-independent overhead measure of
//! experiment E7, and its trackers yield the same metrics as the full
//! profiler so accuracy can be compared side by side.

use std::collections::HashMap;

use vp_instrument::Analysis;
use vp_obs::{ConvEvents, TnvEvents};
use vp_sim::{InstrEvent, Machine};

use crate::metrics::{aggregate, Aggregate, EntityMetrics};
use crate::phase::{Detector, PhaseBudget, PhaseStats, SKETCH_STRIDE};
use crate::track::{TrackerConfig, ValueTracker};

/// Tuning of the convergent profiler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergentConfig {
    /// Executions profiled per burst before checking convergence.
    pub burst: u64,
    /// Maximum absolute change of `Inv-Top(1)` between consecutive burst
    /// ends for the instruction to be considered stable.
    pub delta: f64,
    /// Consecutive stable checks required before backing off.
    pub stable_checks: u32,
    /// Executions skipped after the first convergence.
    pub initial_skip: u64,
    /// Skip-interval growth factor applied at each re-convergence.
    pub backoff: f64,
    /// Upper bound on the skip interval.
    pub max_skip: u64,
}

impl Default for ConvergentConfig {
    /// The defaults used by the reproduction's experiments: 200-execution
    /// bursts, 1% invariance delta, two stable checks, skips growing 4x
    /// from 2 000 up to 256 000 executions.
    fn default() -> Self {
        ConvergentConfig {
            burst: 200,
            delta: 0.01,
            stable_checks: 2,
            initial_skip: 2_000,
            backoff: 4.0,
            max_skip: 256_000,
        }
    }
}

#[derive(Debug, Clone)]
enum Phase {
    /// Profiling a burst; counts executions profiled in the burst so far.
    Profiling { in_burst: u64 },
    /// Skipping; counts executions remaining to skip.
    Skipping { remaining: u64 },
}

#[derive(Debug, Clone)]
struct ConvState {
    tracker: ValueTracker,
    phase: Phase,
    prev_inv: Option<f64>,
    stable: u32,
    skip: u64,
    profiled: u64,
    total: u64,
    /// Phase detector, armed only on adaptive profilers.
    detect: Option<Detector>,
}

impl ConvState {
    fn new(config: TrackerConfig, initial_skip: u64, adaptive: bool) -> ConvState {
        ConvState {
            tracker: ValueTracker::new(config),
            phase: Phase::Profiling { in_burst: 0 },
            prev_inv: None,
            stable: 0,
            skip: initial_skip,
            profiled: 0,
            total: 0,
            detect: adaptive.then(Detector::default),
        }
    }
}

/// Per-instruction overhead/accuracy summary of a convergent run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergentStats {
    /// Instruction index.
    pub index: u32,
    /// Executions observed (profiled or skipped).
    pub total: u64,
    /// Executions actually profiled into the TNV table.
    pub profiled: u64,
}

impl ConvergentStats {
    /// Fraction of executions profiled, in `\[0, 1\]`.
    pub fn profile_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.profiled as f64 / self.total as f64
        }
    }
}

/// The convergent sampling profiler (an [`Analysis`]).
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use vp_core::convergent::{ConvergentConfig, ConvergentProfiler};
/// use vp_core::track::TrackerConfig;
/// use vp_instrument::{Instrumenter, Selection};
/// use vp_sim::MachineConfig;
///
/// // A long loop producing a constant value converges almost immediately.
/// let program = vp_asm::assemble(
///     ".text\nmain: li r9, 30000\nloop: addi r2, r0, 7\n addi r9, r9, -1\n bnz r9, loop\n sys exit\n",
/// )?;
/// let mut profiler = ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
/// Instrumenter::new()
///     .select(Selection::RegisterDefining)
///     .run(&program, MachineConfig::new(), 1_000_000, &mut profiler)?;
/// let constant = profiler.stats().into_iter().find(|s| s.index == 1).unwrap();
/// assert!(constant.profile_fraction() < 0.2, "converged instruction should be mostly skipped");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ConvergentProfiler {
    tracker_config: TrackerConfig,
    config: ConvergentConfig,
    /// Phase-detection budget; `Some` arms the adaptive re-arm machinery.
    budget: Option<PhaseBudget>,
    /// `ceil(budget.window / SKETCH_STRIDE)`, precomputed so the
    /// detector's window bookkeeping never divides (0 when unarmed).
    samples_per_window: u64,
    phase_stats: PhaseStats,
    states: HashMap<u32, ConvState>,
    events: ConvEvents,
}

impl ConvergentProfiler {
    /// Creates a convergent profiler.
    ///
    /// # Panics
    ///
    /// Panics if `config.burst` is 0 or `config.backoff < 1.0`.
    pub fn new(tracker_config: TrackerConfig, config: ConvergentConfig) -> ConvergentProfiler {
        assert!(config.burst > 0, "burst must be positive");
        assert!(config.backoff >= 1.0, "backoff must be >= 1");
        ConvergentProfiler {
            tracker_config,
            config,
            budget: None,
            samples_per_window: 0,
            phase_stats: PhaseStats::default(),
            states: HashMap::new(),
            events: ConvEvents::default(),
        }
    }

    /// Creates a convergent profiler with phase detection armed: each
    /// instruction's value stream is cut into `budget.window`-execution
    /// windows, and a signature shift while the instruction is backed
    /// off re-arms its sampling state machine (at most
    /// `budget.max_rearms` times per instruction). Used through the
    /// [`AdaptiveProfiler`](crate::phase::AdaptiveProfiler) wrapper.
    ///
    /// # Panics
    ///
    /// Panics if `budget.window` is 0, plus the [`new`](Self::new) checks.
    pub fn adaptive(
        tracker_config: TrackerConfig,
        config: ConvergentConfig,
        budget: PhaseBudget,
    ) -> ConvergentProfiler {
        assert!(budget.window > 0, "phase window must be positive");
        let mut p = ConvergentProfiler::new(tracker_config, config);
        p.budget = Some(budget);
        p.samples_per_window = budget.window.div_ceil(SKETCH_STRIDE);
        p
    }

    /// The phase-detection budget, when armed.
    pub fn phase_budget(&self) -> Option<PhaseBudget> {
        self.budget
    }

    /// Exact phase-detector counters, summed over all instructions
    /// (all-zero when detection is unarmed).
    pub fn phase_stats(&self) -> PhaseStats {
        self.phase_stats
    }

    /// Whether one instruction is currently backed off (skipping).
    pub fn is_backed_off(&self, index: u32) -> bool {
        self.states.get(&index).is_some_and(|s| matches!(s.phase, Phase::Skipping { .. }))
    }

    /// Re-arms one instruction's sampling state machine: back to burst
    /// profiling with a fresh convergence history and the skip ladder
    /// reset to `initial_skip`, as if the instruction were new — except
    /// its tracker and profiled/total counters are kept, so
    /// [`metrics`](Self::metrics) still reweights `executions` to the
    /// true totals across the re-arm. Returns whether the instruction
    /// existed and was backed off (a resume is recorded only then).
    pub fn rearm(&mut self, index: u32) -> bool {
        let Some(state) = self.states.get_mut(&index) else { return false };
        let was_backed_off = matches!(state.phase, Phase::Skipping { .. });
        state.phase = Phase::Profiling { in_burst: 0 };
        state.prev_inv = None;
        state.stable = 0;
        state.skip = self.config.initial_skip;
        if was_backed_off {
            self.events.resumes += 1;
        }
        was_backed_off
    }

    /// Self-profiling state-machine events: back-off transitions, resumes
    /// and the profiled/skipped split (`profiled + skipped` equals the
    /// total executions seen).
    pub fn events(&self) -> ConvEvents {
        self.events
    }

    /// Summed TNV-table events across all instruction trackers.
    pub fn tnv_events(&self) -> TnvEvents {
        let mut out = TnvEvents::default();
        for state in self.states.values() {
            out.merge(&state.tracker.tnv_events());
        }
        out
    }

    /// The sampler configuration.
    pub fn config(&self) -> ConvergentConfig {
        self.config
    }

    /// Metric snapshots from the (sampled) trackers, ordered by index,
    /// with execution counts reweighted to the *true* totals each
    /// instruction had — the same convention as
    /// [`SampledProfiler::metrics`](crate::sampled::SampledProfiler::metrics),
    /// so these rows are directly comparable to (and mixable with) a full
    /// profiler's. Profiled-only counts remain available via
    /// [`stats`](ConvergentProfiler::stats).
    pub fn metrics(&self) -> Vec<EntityMetrics> {
        let mut out: Vec<EntityMetrics> = self
            .states
            .iter()
            .map(|(&i, s)| {
                let mut m = EntityMetrics::from_tracker(
                    u64::from(i),
                    &s.tracker,
                    self.tracker_config.capacity,
                );
                m.executions = s.total;
                m
            })
            .collect();
        out.sort_by_key(|m| m.id);
        out
    }

    /// Execution-weighted aggregate over sampled trackers, weighted by the
    /// *total* executions each instruction had (so the aggregate is
    /// comparable to a full profile's).
    pub fn aggregate(&self) -> Aggregate {
        aggregate(&self.metrics())
    }

    /// Per-instruction overhead statistics, ordered by index.
    pub fn stats(&self) -> Vec<ConvergentStats> {
        let mut out: Vec<ConvergentStats> = self
            .states
            .iter()
            .map(|(&index, s)| ConvergentStats { index, total: s.total, profiled: s.profiled })
            .collect();
        out.sort_by_key(|s| s.index);
        out
    }

    /// Overall fraction of executions profiled (the headline overhead
    /// reduction of experiment E7).
    pub fn overall_profile_fraction(&self) -> f64 {
        let total: u64 = self.states.values().map(|s| s.total).sum();
        let profiled: u64 = self.states.values().map(|s| s.profiled).sum();
        if total == 0 {
            0.0
        } else {
            profiled as f64 / total as f64
        }
    }

    /// The sampled tracker of one instruction.
    pub fn tracker(&self, index: u32) -> Option<&ValueTracker> {
        self.states.get(&index).map(|s| &s.tracker)
    }

    /// Feeds one `(instruction, value)` event directly — the trace-replay
    /// entry point; the [`Analysis`] callback delegates here. The state
    /// machine is entirely per-instruction, so replaying each
    /// instruction's value subsequence in order — regardless of how
    /// subsequences of *different* instructions interleave — reproduces a
    /// live run exactly (the entity-sharding equivalence the differential
    /// oracle verifies).
    pub fn observe(&mut self, index: u32, value: u64) {
        let config = self.config;
        let state = self.states.entry(index).or_insert_with(|| {
            ConvState::new(self.tracker_config, config.initial_skip, self.budget.is_some())
        });
        let total = state.total + 1;
        state.total = total;
        match state.phase {
            Phase::Profiling { ref mut in_burst } => {
                state.tracker.observe(value);
                state.profiled += 1;
                self.events.profiled += 1;
                *in_burst += 1;
                if *in_burst >= config.burst {
                    *in_burst = 0;
                    let inv = state.tracker.inv_top(1);
                    let stable_now =
                        state.prev_inv.is_some_and(|prev| (inv - prev).abs() < config.delta);
                    state.prev_inv = Some(inv);
                    if stable_now {
                        state.stable += 1;
                        if state.stable >= config.stable_checks {
                            state.stable = 0;
                            // A zero skip interval (initial_skip: 0) means
                            // "never back off": entering the skipping phase
                            // with 0 remaining would underflow below, so
                            // keep profiling instead.
                            if state.skip > 0 {
                                state.phase = Phase::Skipping { remaining: state.skip };
                                let next = (state.skip as f64 * config.backoff) as u64;
                                state.skip = next.min(config.max_skip);
                                self.events.backoffs += 1;
                            }
                        }
                    } else {
                        state.stable = 0;
                    }
                }
            }
            Phase::Skipping { ref mut remaining } => {
                *remaining -= 1;
                self.events.skipped += 1;
                if *remaining == 0 {
                    state.phase = Phase::Profiling { in_burst: 0 };
                    self.events.resumes += 1;
                }
            }
        }
        // The phase detector samples every SKETCH_STRIDE-th execution —
        // including skipped ones, which is the whole point: it watches
        // for distribution shifts the backed-off sampler is blind to.
        // Gating on the execution counter the state machine already
        // maintains (`total` is 1 on the first, i.e. 0th-position,
        // execution) keeps the common path to one mask-and-branch on a
        // register-resident value; all detector work hides behind it.
        if total & (SKETCH_STRIDE - 1) == 1 {
            if let (Some(budget), Some(det)) = (self.budget, state.detect.as_mut()) {
                if let Some(shift) = det.sample(value, self.samples_per_window) {
                    self.phase_stats.windows += 1;
                    if shift {
                        self.phase_stats.shifts_detected += 1;
                        if matches!(state.phase, Phase::Skipping { .. }) {
                            if det.rearms < budget.max_rearms {
                                det.rearms += 1;
                                self.phase_stats.rearms += 1;
                                // Re-arm: same reset as `rearm`, inlined
                                // here because `state` is already borrowed.
                                state.phase = Phase::Profiling { in_burst: 0 };
                                state.prev_inv = None;
                                state.stable = 0;
                                state.skip = config.initial_skip;
                                self.events.resumes += 1;
                            } else {
                                self.phase_stats.rearms_denied += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Feeds a batch of `(instruction, value)` events in stream order.
    pub fn observe_batch(&mut self, events: &[(u32, u64)]) {
        for &(index, value) in events {
            self.observe(index, value);
        }
    }

    /// Merges the state of another convergent profiler (e.g. one that ran
    /// over a different shard of the workload) into this one, treating
    /// `other` as the *later* shard.
    ///
    /// Per instruction, trackers merge via [`ValueTracker::merge`] and the
    /// profiled/total counters sum, so [`stats`](ConvergentProfiler::stats)
    /// and [`overall_profile_fraction`](ConvergentProfiler::overall_profile_fraction)
    /// reflect the union of both runs. Of the sampling state machine this
    /// profiler keeps its own phase and convergence history (it is the
    /// survivor that may keep profiling), except the skip interval, which
    /// takes the maximum — if either run already backed off that far, the
    /// merged profile has had at least that much evidence of convergence.
    ///
    /// # Panics
    ///
    /// Panics if the profilers' tracker or sampler configurations differ.
    pub fn merge(&mut self, other: ConvergentProfiler) {
        assert_eq!(
            self.tracker_config, other.tracker_config,
            "cannot merge convergent profilers with different tracker configs"
        );
        assert_eq!(
            self.config, other.config,
            "cannot merge convergent profilers with different sampler configs"
        );
        assert_eq!(
            self.budget, other.budget,
            "cannot merge convergent profilers with different phase budgets"
        );
        for (index, theirs) in other.states {
            match self.states.entry(index) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(theirs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    mine.tracker.merge(&theirs.tracker);
                    mine.profiled += theirs.profiled;
                    mine.total += theirs.total;
                    mine.skip = mine.skip.max(theirs.skip);
                    // Entity-disjoint shards never hit this arm; when an
                    // instruction does appear on both sides, the spent
                    // re-arm budget sums and this side's in-progress
                    // window survives (it may keep observing).
                    if let (Some(mine), Some(theirs)) =
                        (mine.detect.as_mut(), theirs.detect.as_ref())
                    {
                        mine.absorb(theirs);
                    }
                }
            }
        }
        self.events.merge(&other.events);
        self.phase_stats.merge(&other.phase_stats);
    }
}

impl Analysis for ConvergentProfiler {
    fn after_instr(&mut self, _machine: &Machine, event: &InstrEvent) {
        let Some((_, value)) = event.dest else { return };
        self.observe(event.index, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(profiler: &mut ConvergentProfiler, index: u32, values: impl Iterator<Item = u64>) {
        // Drive the state machine directly through synthetic events.
        use vp_isa::{AluOp, Instruction, Reg};
        let program = vp_asm::assemble(".text\nmain: sys exit\n").unwrap();
        let machine = vp_sim::Machine::new(program, vp_sim::MachineConfig::new()).unwrap();
        for value in values {
            let event = InstrEvent {
                index,
                instr: Instruction::Alu { op: AluOp::Add, rd: Reg::R1, rs: Reg::R0, rt: Reg::R0 },
                dest: Some((Reg::R1, value)),
                mem: None,
                taken: None,
                next_index: index + 1,
            };
            profiler.after_instr(&machine, &event);
        }
    }

    fn small_config() -> ConvergentConfig {
        ConvergentConfig {
            burst: 10,
            delta: 0.05,
            stable_checks: 2,
            initial_skip: 50,
            backoff: 2.0,
            max_skip: 400,
        }
    }

    #[test]
    fn constant_stream_converges_and_skips() {
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut p, 0, std::iter::repeat_n(7, 10_000));
        let stats = &p.stats()[0];
        assert_eq!(stats.total, 10_000);
        // Must have skipped the overwhelming majority.
        assert!(stats.profile_fraction() < 0.1, "fraction {}", stats.profile_fraction());
        // And the sampled profile still reports full invariance.
        let m = &p.metrics()[0];
        assert!((m.inv_top1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_stream_never_converges_fully() {
        // Invariance of a uniform-random stream keeps drifting early on but
        // eventually settles near zero, so backoff happens late: the
        // profiled fraction stays well above the constant-stream case.
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        let mut seed = 0x9e3779b97f4a7c15u64;
        let values = std::iter::repeat_with(move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        })
        .take(10_000);
        feed(&mut p, 3, values);

        let mut q = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut q, 3, std::iter::repeat_n(7, 10_000));
        assert!(
            p.stats()[0].profiled >= q.stats()[0].profiled,
            "random stream should be profiled at least as much as a constant one"
        );
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = ConvergentConfig { max_skip: 100, ..small_config() };
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), cfg);
        feed(&mut p, 0, std::iter::repeat_n(1, 50_000));
        let s = &p.states[&0];
        assert_eq!(s.skip, 100, "skip should cap at max_skip");
    }

    #[test]
    fn phase_change_reawakens_profiling() {
        // Converge on value A, then switch to value B: the periodic
        // re-profiling bursts must pick up the new value.
        let cfg = small_config();
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), cfg);
        let stream = std::iter::repeat_n(1, 5_000).chain(std::iter::repeat_n(2, 200_000));
        feed(&mut p, 0, stream);
        let tnv = p.tracker(0).unwrap().tnv();
        assert_eq!(tnv.top_value(), Some(2), "new dominant value must surface: {tnv}");
    }

    #[test]
    fn overall_fraction_mixes_instructions() {
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut p, 0, std::iter::repeat_n(7, 10_000));
        feed(&mut p, 1, (0..100u64).cycle().take(10_000));
        let f = p.overall_profile_fraction();
        assert!(f > 0.0 && f < 1.0);
        assert_eq!(p.stats().len(), 2);
    }

    #[test]
    fn aggregate_reweights_by_total() {
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut p, 0, std::iter::repeat_n(7, 10_000));
        let agg = p.aggregate();
        assert_eq!(agg.executions, 10_000);
        assert!((agg.inv_top1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_initial_skip_profiles_everything() {
        // Regression: initial_skip 0 used to enter Skipping { remaining: 0 }
        // and underflow `remaining -= 1` (debug panic; release wrap that
        // silenced the profiler for ~u64::MAX executions). It now means
        // "never back off".
        let cfg = ConvergentConfig { initial_skip: 0, ..small_config() };
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), cfg);
        feed(&mut p, 0, std::iter::repeat_n(7, 5_000));
        let stats = &p.stats()[0];
        assert_eq!(stats.total, 5_000);
        assert_eq!(stats.profiled, 5_000, "zero skip interval disables backoff");
        assert!((stats.profile_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn positive_initial_skip_still_backs_off() {
        // The guard must not change the normal path.
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut p, 0, std::iter::repeat_n(7, 5_000));
        assert!(p.stats()[0].profile_fraction() < 0.5);
    }

    #[test]
    fn metrics_reweight_to_true_totals() {
        // Regression: metrics() used to report profiled-only execution
        // counts while SampledProfiler::metrics() reported true totals,
        // silently mixing conventions in downstream reports.
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut p, 0, std::iter::repeat_n(7, 10_000));
        let m = &p.metrics()[0];
        let s = &p.stats()[0];
        assert_eq!(m.executions, 10_000, "metrics carry true totals");
        assert!(s.profiled < s.total, "while profiling skipped most executions");
    }

    #[test]
    fn rearm_resets_machine_and_reweights_to_true_totals() {
        // Regression guard on the re-arm seam: after converging, backing
        // off and re-arming, metrics() must still reweight `executions`
        // to the true totals (the convention tests/pipeline.rs asserts),
        // and the re-armed burst must profile the new phase.
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut p, 0, std::iter::repeat_n(7, 5_000));
        assert!(p.is_backed_off(0), "constant stream must back off");
        let profiled_before = p.stats()[0].profiled;
        assert!(p.rearm(0), "re-arming a backed-off instruction reports true");
        assert!(!p.is_backed_off(0));
        feed(&mut p, 0, std::iter::repeat_n(9, 5_000));
        let m = &p.metrics()[0];
        let s = &p.stats()[0];
        assert_eq!(m.executions, 10_000, "metrics reweight to true totals across a re-arm");
        assert!(s.profiled > profiled_before, "re-armed instruction profiles again");
        assert!(s.profiled < s.total, "and still backs off afterwards");
        let tnv = p.tracker(0).unwrap().tnv();
        assert!(tnv.entries().iter().any(|e| e.value == 9), "new phase surfaces: {tnv}");
        assert!(!p.rearm(42), "unknown instruction is a no-op");
    }

    #[test]
    fn merge_sums_counts_and_unions_instructions() {
        let mut a = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut a, 0, std::iter::repeat_n(7, 10_000));
        feed(&mut a, 1, (0..100u64).cycle().take(1_000));
        let mut b = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut b, 0, std::iter::repeat_n(7, 4_000));
        feed(&mut b, 2, std::iter::repeat_n(9, 500));
        let (a_profiled, b_profiled) = (a.stats()[0].profiled, b.stats()[0].profiled);
        a.merge(b);
        let stats = a.stats();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].total, 14_000);
        assert_eq!(stats[0].profiled, a_profiled + b_profiled);
        assert_eq!(stats[2].total, 500, "other-only instruction moves over");
        let m = &a.metrics()[0];
        assert_eq!(m.executions, 14_000);
        assert!((m.inv_top1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn events_track_state_machine_and_merge() {
        let mut p = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut p, 0, std::iter::repeat_n(7, 10_000));
        let ev = p.events();
        let stats = &p.stats()[0];
        assert_eq!(ev.profiled, stats.profiled);
        assert_eq!(ev.skipped, stats.total - stats.profiled);
        assert!(ev.backoffs > 0, "constant stream must back off");
        assert!(ev.resumes > 0 && ev.resumes <= ev.backoffs);
        assert_eq!(p.tnv_events().observations(), ev.profiled);

        let mut q = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        feed(&mut q, 1, std::iter::repeat_n(9, 1_000));
        let mut expect = ev;
        expect.merge(&q.events());
        p.merge(q);
        assert_eq!(p.events(), expect);
    }

    #[test]
    #[should_panic(expected = "different sampler configs")]
    fn merge_rejects_mismatched_config() {
        let mut a = ConvergentProfiler::new(TrackerConfig::default(), small_config());
        let b = ConvergentProfiler::new(
            TrackerConfig::default(),
            ConvergentConfig { burst: 11, ..small_config() },
        );
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "burst must be positive")]
    fn zero_burst_panics() {
        let _ = ConvergentProfiler::new(
            TrackerConfig::default(),
            ConvergentConfig { burst: 0, ..ConvergentConfig::default() },
        );
    }
}
