//! The memory half of the resource governor: an explicit byte budget and
//! a per-entity degradation ladder.
//!
//! The paper's space-vs-accuracy trade-off is concrete here: `Inv-All`
//! needs an unbounded exact histogram per entity, while the TNV table is
//! constant-space by design. A [`Governor`] holds a [`MemBudget`] and the
//! exact byte accounting (fed by the profilers' `footprint_bytes()`
//! hooks); when ingest pushes the resident footprint over the budget it
//! walks the ladder, one rung per step, until the budget holds again:
//!
//! 1. **degrade** — the largest entity still holding a [`FullProfile`]
//!    drops it (`ValueTracker::degrade`), keeping the constant-space TNV
//!    table and every scalar counter. Its `inv_top*`/LVP stay exact;
//!    `inv_all*` becomes absent, exactly the shape shard merges already
//!    produce and the aggregate path already tolerates.
//! 2. **drop** — once no full profiles remain, the largest entity is
//!    evicted entirely and its id blacklisted; later observations of it
//!    are counted, not stored (like `MemoryProfiler`'s location cap).
//!
//! Victim selection is by largest current footprint with ties broken by
//! smallest entity id — a pure function of profiler state, which is itself
//! a pure function of the input stream, so governed runs are deterministic
//! and `--jobs N` stays byte-identical to serial (each workload owns its
//! profiler). Enforcement happens after *every* observation, so
//! [`GovernorStats::bytes_peak`] — sampled post-enforcement — never
//! exceeds the budget.
//!
//! The byte accounting runs on a per-workload [`Arena`] meter, and since
//! every tracker block now has a capacity-determined exact size
//! (`TnvTable`'s entry array, [`FullProfile`]'s `ValueMap` slab),
//! `bytes_peak` *is* the arena high-water mark: ground truth, not an
//! estimate of allocator internals.
//!
//! [`FullProfile`]: crate::track::FullProfile

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

use crate::arena::Arena;
use crate::track::{TrackerConfig, ValueTracker};

/// A byte budget for one profiler's resident tracker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemBudget {
    limit_bytes: usize,
}

impl MemBudget {
    /// A budget of exactly `limit` bytes.
    pub fn bytes(limit: usize) -> MemBudget {
        MemBudget { limit_bytes: limit }
    }

    /// A budget of `limit` mebibytes — the unit `--mem-budget-mb` takes.
    pub fn mib(limit: usize) -> MemBudget {
        MemBudget { limit_bytes: limit.saturating_mul(1024 * 1024) }
    }

    /// The limit in bytes.
    pub fn limit_bytes(&self) -> usize {
        self.limit_bytes
    }

    /// An equal slice of this budget for each of `shards` concurrent
    /// profilers, so their combined resident footprint stays within the
    /// whole. Summing the shards' post-enforcement peaks therefore bounds
    /// the combined peak by the original budget.
    pub fn split(&self, shards: usize) -> MemBudget {
        MemBudget { limit_bytes: (self.limit_bytes / shards.max(1)).max(1) }
    }
}

/// Exact counters of everything a [`Governor`] did. Merging (summing)
/// shard stats gives the whole run's totals; `bytes_peak` sums to an
/// upper bound of the combined resident peak (shards run under split
/// budgets — see [`MemBudget::split`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernorStats {
    /// Highest resident governed footprint, in bytes, sampled after
    /// enforcement — never exceeds the budget.
    pub bytes_peak: u64,
    /// Entities that lost their exact histogram (ladder rung 1).
    pub entities_degraded: u64,
    /// Entities evicted entirely (ladder rung 2).
    pub entities_dropped: u64,
    /// Observations of already-dropped entities that were counted but
    /// not stored.
    pub observations_dropped: u64,
}

impl GovernorStats {
    /// Folds another shard's stats into this one (all counters sum).
    pub fn merge(&mut self, other: &GovernorStats) {
        self.bytes_peak += other.bytes_peak;
        self.entities_degraded += other.entities_degraded;
        self.entities_dropped += other.entities_dropped;
        self.observations_dropped += other.observations_dropped;
    }

    /// Whether the governor ever had to intervene (or shed observations).
    pub fn intervened(&self) -> bool {
        self.entities_degraded > 0 || self.entities_dropped > 0 || self.observations_dropped > 0
    }
}

/// Enforces a [`MemBudget`] over one profiler's tracker map. Embedded as
/// `Option<Governor>` in the profilers; `None` (the default) leaves every
/// pre-existing code path untouched.
#[derive(Debug, Clone)]
pub struct Governor {
    budget: MemBudget,
    arena: Arena,
    stats: GovernorStats,
    dropped: HashSet<u64>,
}

impl Governor {
    /// A governor with nothing resident yet.
    pub fn new(budget: MemBudget) -> Governor {
        Governor {
            budget,
            arena: Arena::new(),
            stats: GovernorStats::default(),
            dropped: HashSet::new(),
        }
    }

    /// The budget being enforced.
    pub fn budget(&self) -> MemBudget {
        self.budget
    }

    /// Current resident governed footprint in bytes.
    pub fn bytes_current(&self) -> usize {
        self.arena.live_bytes()
    }

    /// The arena meter behind the accounting. `bytes_peak` in
    /// [`GovernorStats`] equals `arena().high_water_bytes()` exactly for
    /// an unmerged governor (after shard absorption the stats carry the
    /// summed per-shard peaks instead).
    pub fn arena(&self) -> &Arena {
        &self.arena
    }

    /// The intervention counters so far.
    pub fn stats(&self) -> &GovernorStats {
        &self.stats
    }

    /// Whether `id` has been evicted (ladder rung 2); its observations
    /// are counted via [`observe`](Governor::observe) but not stored.
    pub fn is_dropped(&self, id: u64) -> bool {
        self.dropped.contains(&id)
    }

    /// Feeds one `(id, value)` observation through the governed path:
    /// dropped entities are counted and skipped; otherwise the tracker
    /// observes, the byte delta is charged, and the ladder runs until the
    /// budget holds again.
    pub fn observe<K>(
        &mut self,
        trackers: &mut HashMap<K, ValueTracker>,
        config: TrackerConfig,
        id: K,
        value: u64,
    ) where
        K: Copy + Eq + Ord + Hash + Into<u64>,
    {
        if self.dropped.contains(&id.into()) {
            self.stats.observations_dropped += 1;
            return;
        }
        let before = trackers.get(&id).map_or(0, ValueTracker::footprint_bytes);
        let tracker = trackers.entry(id).or_insert_with(|| ValueTracker::new(config));
        tracker.observe(value);
        let after = tracker.footprint_bytes();
        // Footprints are monotone under observe (tested in `track`), so
        // the delta is non-negative.
        self.arena.charge(after - before);
        if self.arena.live_bytes() > self.budget.limit_bytes {
            self.enforce(trackers);
        }
        // Mark only the settled state: a transient over-budget spike the
        // ladder just rolled back is not a resident peak.
        self.arena.mark();
        self.stats.bytes_peak = self.stats.bytes_peak.max(self.arena.high_water_bytes() as u64);
    }

    /// Walks the degradation ladder until the budget holds: degrade the
    /// largest full-profile holder first (rung 1), evict the largest
    /// remaining entity once no full profiles are left (rung 2). Ties go
    /// to the smallest id, so victim selection is deterministic.
    fn enforce<K>(&mut self, trackers: &mut HashMap<K, ValueTracker>)
    where
        K: Copy + Eq + Ord + Hash + Into<u64>,
    {
        while self.arena.live_bytes() > self.budget.limit_bytes && !trackers.is_empty() {
            let degradable = trackers
                .iter()
                .filter(|(_, t)| t.has_full())
                .max_by_key(|(&id, t)| (t.footprint_bytes(), std::cmp::Reverse(id)))
                .map(|(&id, _)| id);
            if let Some(id) = degradable {
                let freed = trackers.get_mut(&id).expect("victim exists").degrade();
                self.arena.release(freed);
                self.stats.entities_degraded += 1;
                continue;
            }
            let victim = trackers
                .iter()
                .max_by_key(|(&id, t)| (t.footprint_bytes(), std::cmp::Reverse(id)))
                .map(|(&id, _)| id)
                .expect("non-empty map has a largest entity");
            let tracker = trackers.remove(&victim).expect("victim exists");
            self.arena.release(tracker.footprint_bytes());
            self.stats.entities_dropped += 1;
            self.dropped.insert(victim.into());
        }
    }

    /// Folds another shard's governor into this one after the tracker
    /// maps were merged: counters sum, the blacklists union, and the
    /// resident accounting is reset to `resident_bytes` (the merged map's
    /// total footprint — merging shard results may legitimately exceed a
    /// per-shard budget; enforcement is an ingest-time property and
    /// resumes if the merged profiler observes again).
    pub fn absorb(&mut self, other: &Governor, resident_bytes: usize) {
        self.stats.merge(&other.stats);
        self.dropped.extend(other.dropped.iter().copied());
        self.arena.reset_live(resident_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(
        governor: &mut Governor,
        trackers: &mut HashMap<u32, ValueTracker>,
        events: &[(u32, u64)],
    ) {
        for &(id, value) in events {
            governor.observe(trackers, TrackerConfig::with_full(), id, value);
        }
    }

    fn spread(entities: u32, values: u64) -> Vec<(u32, u64)> {
        let mut events = Vec::new();
        for v in 0..values {
            for id in 0..entities {
                events.push((id, v.wrapping_mul(u64::from(id) + 1)));
            }
        }
        events
    }

    #[test]
    fn generous_budget_never_intervenes() {
        let mut governor = Governor::new(MemBudget::mib(64));
        let mut governed: HashMap<u32, ValueTracker> = HashMap::new();
        let mut reference: HashMap<u32, ValueTracker> = HashMap::new();
        for (id, value) in spread(8, 500) {
            governor.observe(&mut governed, TrackerConfig::with_full(), id, value);
            reference
                .entry(id)
                .or_insert_with(|| ValueTracker::new(TrackerConfig::with_full()))
                .observe(value);
        }
        assert!(!governor.stats().intervened());
        assert_eq!(governed.len(), reference.len());
        for (id, tracker) in &reference {
            assert_eq!(governed[id].full(), tracker.full(), "entity {id}");
            assert_eq!(governed[id].inv_top(1), tracker.inv_top(1), "entity {id}");
        }
        let total: usize = governed.values().map(ValueTracker::footprint_bytes).sum();
        assert_eq!(governor.bytes_current(), total, "accounting matches reality");
        assert_eq!(governor.stats().bytes_peak, total as u64);
    }

    #[test]
    fn tight_budget_degrades_before_dropping_and_peak_holds() {
        let budget = MemBudget::bytes(16 * 1024);
        let mut governor = Governor::new(budget);
        let mut trackers: HashMap<u32, ValueTracker> = HashMap::new();
        feed(&mut governor, &mut trackers, &spread(6, 2000));
        let stats = *governor.stats();
        assert!(stats.intervened());
        assert!(stats.entities_degraded > 0, "ladder rung 1 used");
        assert!(stats.bytes_peak <= budget.limit_bytes() as u64, "peak within budget");
        let total: usize = trackers.values().map(ValueTracker::footprint_bytes).sum();
        assert_eq!(governor.bytes_current(), total);
        assert!(total <= budget.limit_bytes());
    }

    #[test]
    fn degraded_entities_keep_exact_scalar_metrics() {
        let events = spread(6, 2000);
        let mut governor = Governor::new(MemBudget::bytes(16 * 1024));
        let mut governed: HashMap<u32, ValueTracker> = HashMap::new();
        feed(&mut governor, &mut governed, &events);
        let mut reference: HashMap<u32, ValueTracker> = HashMap::new();
        for &(id, value) in &events {
            reference
                .entry(id)
                .or_insert_with(|| ValueTracker::new(TrackerConfig::with_full()))
                .observe(value);
        }
        for (id, tracker) in &governed {
            let truth = &reference[id];
            assert_eq!(tracker.executions(), truth.executions(), "entity {id}");
            assert_eq!(tracker.lvp(), truth.lvp(), "entity {id}");
            assert_eq!(tracker.inv_top(3), truth.inv_top(3), "entity {id}");
            assert_eq!(tracker.pct_zero(), truth.pct_zero(), "entity {id}");
        }
    }

    #[test]
    fn starvation_budget_drops_entities_and_counts_observations() {
        // Smaller than a single tracker: every entity is eventually
        // created, degraded, and evicted; later observations are shed.
        let mut governor = Governor::new(MemBudget::bytes(64));
        let mut trackers: HashMap<u32, ValueTracker> = HashMap::new();
        feed(&mut governor, &mut trackers, &spread(3, 50));
        let stats = *governor.stats();
        assert!(trackers.is_empty());
        assert_eq!(stats.entities_dropped, 3);
        assert!(stats.observations_dropped > 0);
        assert!(governor.is_dropped(0) && governor.is_dropped(2));
        assert_eq!(governor.bytes_current(), 0);
    }

    #[test]
    fn victim_selection_is_deterministic() {
        let events = spread(5, 800);
        let run = || {
            let mut governor = Governor::new(MemBudget::bytes(8 * 1024));
            let mut trackers: HashMap<u32, ValueTracker> = HashMap::new();
            feed(&mut governor, &mut trackers, &events);
            let mut surviving: Vec<u32> = trackers.keys().copied().collect();
            surviving.sort_unstable();
            let degraded: Vec<u32> = {
                let mut d: Vec<u32> =
                    trackers.iter().filter(|(_, t)| !t.has_full()).map(|(&id, _)| id).collect();
                d.sort_unstable();
                d
            };
            (*governor.stats(), surviving, degraded)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stats_merge_sums_everything() {
        let mut a = GovernorStats {
            bytes_peak: 100,
            entities_degraded: 2,
            entities_dropped: 1,
            observations_dropped: 7,
        };
        let b = GovernorStats {
            bytes_peak: 50,
            entities_degraded: 1,
            entities_dropped: 0,
            observations_dropped: 3,
        };
        a.merge(&b);
        assert_eq!(a.bytes_peak, 150);
        assert_eq!(a.entities_degraded, 3);
        assert_eq!(a.entities_dropped, 1);
        assert_eq!(a.observations_dropped, 10);
        assert!(a.intervened());
        assert!(!GovernorStats::default().intervened());
    }

    #[test]
    fn bytes_peak_is_the_arena_high_water_mark_exactly() {
        // Under any budget — generous or degrading — an unmerged
        // governor's reported peak is the arena's high-water mark, and
        // the arena's live total is the exact summed tracker footprint.
        for budget in [MemBudget::mib(64), MemBudget::bytes(16 * 1024), MemBudget::bytes(64)] {
            let mut governor = Governor::new(budget);
            let mut trackers: HashMap<u32, ValueTracker> = HashMap::new();
            feed(&mut governor, &mut trackers, &spread(6, 1200));
            let total: usize = trackers.values().map(ValueTracker::footprint_bytes).sum();
            assert_eq!(governor.arena().live_bytes(), total, "live is exact");
            assert_eq!(
                governor.stats().bytes_peak,
                governor.arena().high_water_bytes() as u64,
                "peak is the marked high water"
            );
            assert!(governor.stats().bytes_peak <= budget.limit_bytes() as u64);
        }
    }

    #[test]
    fn split_budget_sums_to_at_most_the_whole() {
        let whole = MemBudget::mib(4);
        let part = whole.split(3);
        assert!(part.limit_bytes() * 3 <= whole.limit_bytes());
        assert_eq!(whole.split(0).limit_bytes(), whole.limit_bytes());
        assert_eq!(MemBudget::bytes(1).split(8).limit_bytes(), 1);
    }
}
