//! Sampling-based profiling baselines.
//!
//! The paper positions its *convergent* profiler against simpler ways of
//! cutting profiling cost, in particular the Continuous Profiling
//! Infrastructure's random sampling (Anderson et al. \[1\]) — "for doing
//! accurate value profiling additional research is needed to determine if
//! random sampling is sufficient". These baselines answer that question in
//! the ablation experiment (E7): sample every k-th execution
//! ([`SampleStrategy::Periodic`]) or with probability 1/k
//! ([`SampleStrategy::Random`]) — spending the *same* profiling budget on
//! every instruction regardless of whether its profile has converged.

use std::collections::HashMap;

use vp_instrument::Analysis;
use vp_obs::{SampleEvents, TnvEvents};
use vp_sim::{InstrEvent, Machine};

use crate::metrics::{aggregate, Aggregate, EntityMetrics};
use crate::track::{TrackerConfig, ValueTracker};

/// How executions are picked for profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// Profile every `k`-th execution of each instruction (deterministic).
    Periodic {
        /// Sampling period (1 = profile everything).
        period: u64,
    },
    /// Profile each execution with probability `1/period`, using a
    /// per-profiler xorshift generator seeded deterministically (runs are
    /// reproducible).
    Random {
        /// Expected sampling period.
        period: u64,
    },
}

#[derive(Debug, Clone)]
struct SampleState {
    tracker: ValueTracker,
    countdown: u64,
    profiled: u64,
    total: u64,
}

/// A value profiler that samples a fixed fraction of executions — the
/// CPI-style baseline the convergent profiler is compared against.
///
/// ```
/// use vp_core::sampled::{SampledProfiler, SampleStrategy};
/// use vp_core::track::TrackerConfig;
///
/// let profiler = SampledProfiler::new(
///     TrackerConfig::default(),
///     SampleStrategy::Periodic { period: 10 },
/// );
/// assert_eq!(profiler.overall_profile_fraction(), 0.0); // nothing seen yet
/// ```
#[derive(Debug, Clone)]
pub struct SampledProfiler {
    tracker_config: TrackerConfig,
    strategy: SampleStrategy,
    states: HashMap<u32, SampleState>,
    rng: u64,
    events: SampleEvents,
}

impl SampledProfiler {
    /// Creates a sampled profiler.
    ///
    /// # Panics
    ///
    /// Panics if the sampling period is 0.
    pub fn new(tracker_config: TrackerConfig, strategy: SampleStrategy) -> SampledProfiler {
        let period = match strategy {
            SampleStrategy::Periodic { period } | SampleStrategy::Random { period } => period,
        };
        assert!(period > 0, "sampling period must be positive");
        SampledProfiler {
            tracker_config,
            strategy,
            states: HashMap::new(),
            rng: 0x9e37_79b9_7f4a_7c15,
            events: SampleEvents::default(),
        }
    }

    /// Self-profiling take/skip decision counts (`taken + skipped` equals
    /// the total executions seen).
    pub fn events(&self) -> SampleEvents {
        self.events
    }

    /// Summed TNV-table events across all instruction trackers.
    pub fn tnv_events(&self) -> TnvEvents {
        let mut out = TnvEvents::default();
        for state in self.states.values() {
            out.merge(&state.tracker.tnv_events());
        }
        out
    }

    /// The sampling strategy in force.
    pub fn strategy(&self) -> SampleStrategy {
        self.strategy
    }

    /// Metric snapshots from the sampled trackers, ordered by index, with
    /// execution counts reweighted to the true totals (comparable to a
    /// full profile's aggregate).
    pub fn metrics(&self) -> Vec<EntityMetrics> {
        let mut out: Vec<EntityMetrics> = self
            .states
            .iter()
            .map(|(&i, s)| {
                let mut m = EntityMetrics::from_tracker(
                    u64::from(i),
                    &s.tracker,
                    self.tracker_config.capacity,
                );
                m.executions = s.total;
                m
            })
            .collect();
        out.sort_by_key(|m| m.id);
        out
    }

    /// Execution-weighted aggregate (weights are true execution counts).
    pub fn aggregate(&self) -> Aggregate {
        aggregate(&self.metrics())
    }

    /// Overall fraction of executions profiled.
    pub fn overall_profile_fraction(&self) -> f64 {
        let total: u64 = self.states.values().map(|s| s.total).sum();
        let profiled: u64 = self.states.values().map(|s| s.profiled).sum();
        if total == 0 {
            0.0
        } else {
            profiled as f64 / total as f64
        }
    }

    /// Feeds one `(instruction, value)` event directly — the trace-replay
    /// entry point; the [`Analysis`] callback delegates here.
    ///
    /// Under [`SampleStrategy::Periodic`] the sampling position is a
    /// per-instruction countdown, so replay is insensitive to how
    /// different instructions' subsequences interleave (entity-sharding
    /// reproduces a live run exactly). [`SampleStrategy::Random`] draws
    /// from a single profiler-wide generator whose sequence *does* depend
    /// on the global interleaving — sharded replay of a random-sampled
    /// profile is statistically equivalent but not bit-identical.
    pub fn observe(&mut self, index: u32, value: u64) {
        let strategy = self.strategy;
        let config = self.tracker_config;
        // Random draw decided before borrowing the state.
        let random_hit = match strategy {
            SampleStrategy::Random { period } => self.next_random().is_multiple_of(period),
            SampleStrategy::Periodic { .. } => false,
        };
        let state = self.states.entry(index).or_insert_with(|| SampleState {
            tracker: ValueTracker::new(config),
            countdown: 0,
            profiled: 0,
            total: 0,
        });
        state.total += 1;
        let hit = match strategy {
            SampleStrategy::Periodic { period } => {
                if state.countdown == 0 {
                    state.countdown = period - 1;
                    true
                } else {
                    state.countdown -= 1;
                    false
                }
            }
            SampleStrategy::Random { .. } => random_hit,
        };
        if hit {
            state.tracker.observe(value);
            state.profiled += 1;
            self.events.taken += 1;
        } else {
            self.events.skipped += 1;
        }
    }

    /// Feeds a batch of `(instruction, value)` events in stream order.
    pub fn observe_batch(&mut self, events: &[(u32, u64)]) {
        for &(index, value) in events {
            self.observe(index, value);
        }
    }

    /// Merges the state of another sampled profiler (a later shard of the
    /// same workload) into this one: per-instruction trackers merge via
    /// [`ValueTracker::merge`] and profiled/total counters sum. This
    /// profiler keeps its own sampling position (periodic countdown /
    /// random-generator state).
    ///
    /// # Panics
    ///
    /// Panics if the profilers' tracker configurations or sampling
    /// strategies differ.
    pub fn merge(&mut self, other: SampledProfiler) {
        assert_eq!(
            self.tracker_config, other.tracker_config,
            "cannot merge sampled profilers with different tracker configs"
        );
        assert_eq!(
            self.strategy, other.strategy,
            "cannot merge sampled profilers with different strategies"
        );
        for (index, theirs) in other.states {
            match self.states.entry(index) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(theirs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let mine = e.get_mut();
                    mine.tracker.merge(&theirs.tracker);
                    mine.profiled += theirs.profiled;
                    mine.total += theirs.total;
                }
            }
        }
        self.events.merge(&other.events);
    }

    fn next_random(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }
}

impl Analysis for SampledProfiler {
    fn after_instr(&mut self, _machine: &Machine, event: &InstrEvent) {
        let Some((_, value)) = event.dest else { return };
        self.observe(event.index, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{AluOp, Instruction, Reg};

    fn feed(profiler: &mut SampledProfiler, index: u32, values: impl Iterator<Item = u64>) {
        let program = vp_asm::assemble(".text\nmain: sys exit\n").unwrap();
        let machine = vp_sim::Machine::new(program, vp_sim::MachineConfig::new()).unwrap();
        for value in values {
            let event = InstrEvent {
                index,
                instr: Instruction::Alu { op: AluOp::Add, rd: Reg::R1, rs: Reg::R0, rt: Reg::R0 },
                dest: Some((Reg::R1, value)),
                mem: None,
                taken: None,
                next_index: index + 1,
            };
            profiler.after_instr(&machine, &event);
        }
    }

    #[test]
    fn periodic_fraction_is_exact() {
        let mut p =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Periodic { period: 10 });
        feed(&mut p, 0, std::iter::repeat_n(7, 1000));
        assert!((p.overall_profile_fraction() - 0.1).abs() < 1e-12);
        let m = &p.metrics()[0];
        assert_eq!(m.executions, 1000, "metrics reweighted to true totals");
        assert!((m.inv_top1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_fraction_is_approximate() {
        let mut p =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Random { period: 10 });
        feed(&mut p, 0, std::iter::repeat_n(7, 100_000));
        let f = p.overall_profile_fraction();
        assert!((f - 0.1).abs() < 0.01, "fraction {f}");
    }

    #[test]
    fn sampling_estimates_invariance_of_mixed_stream() {
        // 90/10 mix: a 1-in-10 periodic sampler still sees the mix.
        let mut p =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Random { period: 10 });
        let values = (0..100_000u64).map(|i| if i % 10 == 3 { 5 } else { 1 });
        feed(&mut p, 0, values);
        let inv = p.metrics()[0].inv_top1;
        assert!((inv - 0.9).abs() < 0.03, "estimated invariance {inv}");
    }

    #[test]
    fn periodic_sampling_aliases_with_periodic_streams() {
        // The classic sampling hazard motivating CPI's *random* sampling:
        // a period-10 sampler on a period-10 stream sees only one value.
        let mut p =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Periodic { period: 10 });
        let values = (0..10_000u64).map(|i| i % 10);
        feed(&mut p, 0, values);
        let m = &p.metrics()[0];
        assert!((m.inv_top1 - 1.0).abs() < 1e-12, "aliased estimate claims invariance");
        // Random sampling does not alias.
        let mut r =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Random { period: 10 });
        let values = (0..10_000u64).map(|i| i % 10);
        feed(&mut r, 0, values);
        assert!(r.metrics()[0].inv_top1 < 0.3);
    }

    #[test]
    fn runs_are_reproducible() {
        let run = || {
            let mut p = SampledProfiler::new(
                TrackerConfig::default(),
                SampleStrategy::Random { period: 7 },
            );
            feed(&mut p, 0, (0..10_000u64).map(|i| i * 31));
            p.overall_profile_fraction()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn events_split_taken_and_skipped() {
        let mut p =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Periodic { period: 10 });
        feed(&mut p, 0, std::iter::repeat_n(7, 1000));
        let ev = p.events();
        assert_eq!(ev.taken, 100);
        assert_eq!(ev.skipped, 900);
        assert_eq!(p.tnv_events().observations(), ev.taken);

        let mut q =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Periodic { period: 10 });
        feed(&mut q, 0, std::iter::repeat_n(9, 100));
        p.merge(q);
        assert_eq!(p.events(), SampleEvents { taken: 110, skipped: 990 });
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ =
            SampledProfiler::new(TrackerConfig::default(), SampleStrategy::Periodic { period: 0 });
    }
}
