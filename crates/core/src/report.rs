//! Report rendering and cross-profile comparison.
//!
//! Renders the paper-style metric tables and computes the train-vs-test
//! stability statistics of Table V.5 / experiment E8.

use std::fmt::Write as _;

use crate::metrics::{aggregate, correlation, Aggregate, EntityMetrics};

/// Formats a ratio as a percentage with one decimal, or `-` when absent.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:5.1}", x * 100.0),
        None => "    -".to_string(),
    }
}

/// One labelled row of a report table.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Row label (benchmark or entity name).
    pub label: String,
    /// The row's aggregate metrics.
    pub aggregate: Aggregate,
}

/// Renders the paper's standard metric table: one row per benchmark with
/// `LVP`, `Inv-Top(1)`, `Inv-Top(N)`, `Inv-All(1)`, `Inv-All(N)`, `%zero`
/// and `Diff(L/I)` columns (percentages).
pub fn render_metric_table(title: &str, rows: &[ReportRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<14} {:>12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "program", "execs", "LVP", "InvT1", "InvTN", "InvA1", "InvAN", "%zero", "Diff"
    );
    for row in rows {
        let a = &row.aggregate;
        let diff = match a.diff_ratio {
            Some(d) => format!("{d:8.4}"),
            None => "       -".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {}",
            row.label,
            a.executions,
            pct(Some(a.lvp)),
            pct(Some(a.inv_top1)),
            pct(Some(a.inv_topn)),
            pct(a.inv_all1),
            pct(a.inv_alln),
            pct(Some(a.pct_zero)),
            diff,
        );
    }
    if rows.len() > 1 {
        let mean = mean_of(rows);
        let diff = match mean.diff_ratio {
            Some(d) => format!("{d:8.4}"),
            None => "       -".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<14} {:>12} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {}",
            "mean",
            mean.executions,
            pct(Some(mean.lvp)),
            pct(Some(mean.inv_top1)),
            pct(Some(mean.inv_topn)),
            pct(mean.inv_all1),
            pct(mean.inv_alln),
            pct(Some(mean.pct_zero)),
            diff,
        );
    }
    out
}

/// Unweighted mean of row aggregates (the paper's cross-benchmark mean
/// row: each program counts equally regardless of run length).
pub fn mean_of(rows: &[ReportRow]) -> Aggregate {
    if rows.is_empty() {
        return Aggregate::default();
    }
    let n = rows.len() as f64;
    let mean_opt = |f: &dyn Fn(&Aggregate) -> Option<f64>| -> Option<f64> {
        let vals: Vec<f64> = rows.iter().filter_map(|r| f(&r.aggregate)).collect();
        (vals.len() == rows.len()).then(|| vals.iter().sum::<f64>() / n)
    };
    Aggregate {
        entities: rows.iter().map(|r| r.aggregate.entities).sum(),
        executions: rows.iter().map(|r| r.aggregate.executions).sum(),
        lvp: rows.iter().map(|r| r.aggregate.lvp).sum::<f64>() / n,
        inv_top1: rows.iter().map(|r| r.aggregate.inv_top1).sum::<f64>() / n,
        inv_topn: rows.iter().map(|r| r.aggregate.inv_topn).sum::<f64>() / n,
        inv_all1: mean_opt(&|a| a.inv_all1),
        inv_alln: mean_opt(&|a| a.inv_alln),
        pct_zero: rows.iter().map(|r| r.aggregate.pct_zero).sum::<f64>() / n,
        diff_ratio: mean_opt(&|a| a.diff_ratio),
    }
}

/// Result of comparing two profiles of the same program (e.g. train and
/// test inputs, or full vs convergent profiling).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileComparison {
    /// Entities present in both profiles.
    pub common: usize,
    /// Entities present in exactly one profile.
    pub only_one_side: usize,
    /// Mean absolute difference of `Inv-Top(1)`, weighted by the first
    /// profile's execution counts.
    pub mean_abs_inv_diff: f64,
    /// Largest absolute per-entity `Inv-Top(1)` difference.
    pub max_abs_inv_diff: f64,
    /// Pearson correlation of per-entity `Inv-Top(1)` across profiles.
    pub inv_correlation: f64,
    /// Pearson correlation of per-entity LVP across profiles.
    pub lvp_correlation: f64,
    /// Fraction of common entities whose TNV top value agrees.
    pub top_value_agreement: f64,
}

/// Compares two metric sets keyed by entity id.
///
/// This is the machinery of experiment E8 (test vs train stability: the
/// Wall \[38\] result for value profiles) and E7 (convergent vs full
/// accuracy).
pub fn compare(a: &[EntityMetrics], b: &[EntityMetrics]) -> ProfileComparison {
    use std::collections::HashMap;
    let bmap: HashMap<u64, &EntityMetrics> = b.iter().map(|m| (m.id, m)).collect();
    let mut pairs: Vec<(&EntityMetrics, &EntityMetrics)> = Vec::new();
    let mut only = 0usize;
    for m in a {
        match bmap.get(&m.id) {
            Some(other) => pairs.push((m, other)),
            None => only += 1,
        }
    }
    only += b.len() - pairs.len();

    let weight: u64 = pairs.iter().map(|(x, _)| x.executions).sum();
    let mut wsum = 0.0;
    let mut max_diff = 0.0f64;
    let mut agree = 0usize;
    let mut xs = Vec::with_capacity(pairs.len());
    let mut ys = Vec::with_capacity(pairs.len());
    let mut lx = Vec::with_capacity(pairs.len());
    let mut ly = Vec::with_capacity(pairs.len());
    for (x, y) in &pairs {
        let d = (x.inv_top1 - y.inv_top1).abs();
        wsum += d * x.executions as f64;
        max_diff = max_diff.max(d);
        if x.top_value.is_some() && x.top_value == y.top_value {
            agree += 1;
        }
        xs.push(x.inv_top1);
        ys.push(y.inv_top1);
        lx.push(x.lvp);
        ly.push(y.lvp);
    }
    ProfileComparison {
        common: pairs.len(),
        only_one_side: only,
        mean_abs_inv_diff: if weight == 0 { 0.0 } else { wsum / weight as f64 },
        max_abs_inv_diff: max_diff,
        inv_correlation: correlation(&xs, &ys),
        lvp_correlation: correlation(&lx, &ly),
        top_value_agreement: if pairs.is_empty() { 0.0 } else { agree as f64 / pairs.len() as f64 },
    }
}

/// Groups instruction metrics by opcode class — the paper's per-class
/// breakdown (experiment E5). Entity ids must be instruction indices into
/// `program` (the [`InstructionProfiler`](crate::InstructionProfiler)
/// convention); out-of-range ids are ignored.
pub fn group_by_class(
    program: &vp_asm::Program,
    metrics: &[EntityMetrics],
) -> std::collections::BTreeMap<vp_isa::OpClass, Vec<EntityMetrics>> {
    let mut out: std::collections::BTreeMap<vp_isa::OpClass, Vec<EntityMetrics>> =
        std::collections::BTreeMap::new();
    for m in metrics {
        if let Some(instr) = program.code().get(m.id as usize) {
            out.entry(instr.class()).or_default().push(m.clone());
        }
    }
    out
}

/// Convenience: builds a [`ReportRow`] from raw entity metrics.
pub fn row(label: impl Into<String>, metrics: &[EntityMetrics]) -> ReportRow {
    ReportRow { label: label.into(), aggregate: aggregate(metrics) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity(id: u64, executions: u64, inv: f64) -> EntityMetrics {
        EntityMetrics {
            id,
            executions,
            lvp: inv,
            inv_top1: inv,
            inv_topn: inv,
            inv_all1: Some(inv),
            inv_alln: Some(inv),
            pct_zero: 0.0,
            distinct: Some(1),
            top_value: Some((inv * 100.0) as u64),
        }
    }

    #[test]
    fn table_renders_all_columns() {
        let rows = vec![row("alpha", &[entity(0, 100, 0.9)]), row("beta", &[entity(0, 50, 0.5)])];
        let text = render_metric_table("loads", &rows);
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("mean"));
        assert!(text.contains("90.0"));
        assert!(text.contains("50.0"));
        assert!(text.contains("LVP"));
    }

    #[test]
    fn mean_is_unweighted() {
        let rows = vec![row("a", &[entity(0, 1000, 1.0)]), row("b", &[entity(0, 10, 0.0)])];
        let mean = mean_of(&rows);
        assert!((mean.inv_top1 - 0.5).abs() < 1e-12);
        assert_eq!(mean.executions, 1010);
        assert_eq!(mean_of(&[]), Aggregate::default());
    }

    #[test]
    fn comparison_identical_profiles() {
        let ms = vec![entity(0, 10, 0.9), entity(1, 20, 0.3)];
        let c = compare(&ms, &ms);
        assert_eq!(c.common, 2);
        assert_eq!(c.only_one_side, 0);
        assert_eq!(c.mean_abs_inv_diff, 0.0);
        assert_eq!(c.max_abs_inv_diff, 0.0);
        assert!((c.inv_correlation - 1.0).abs() < 1e-12);
        assert_eq!(c.top_value_agreement, 1.0);
    }

    #[test]
    fn comparison_detects_differences() {
        let a = vec![entity(0, 100, 0.9), entity(1, 100, 0.1), entity(2, 5, 0.5)];
        let b = vec![entity(0, 100, 0.8), entity(1, 100, 0.2)];
        let c = compare(&a, &b);
        assert_eq!(c.common, 2);
        assert_eq!(c.only_one_side, 1);
        assert!((c.max_abs_inv_diff - 0.1).abs() < 1e-12);
        assert!(c.mean_abs_inv_diff > 0.0);
        assert!(c.top_value_agreement < 1.0);
    }

    #[test]
    fn comparison_empty() {
        let c = compare(&[], &[]);
        assert_eq!(c.common, 0);
        assert_eq!(c.top_value_agreement, 0.0);
    }

    #[test]
    fn group_by_class_partitions() {
        let program = vp_asm::assemble(
            ".data\nx: .quad 1\n.text\nmain: la r8, x\n ldd r2, 0(r8)\n add r3, r2, r2\n sys exit\n",
        )
        .unwrap();
        let ms = vec![entity(0, 1, 0.5), entity(2, 1, 0.5), entity(3, 1, 0.5), entity(99, 1, 0.5)];
        let groups = group_by_class(&program, &ms);
        assert_eq!(groups[&vp_isa::OpClass::Load].len(), 1);
        assert_eq!(groups[&vp_isa::OpClass::IntAlu].len(), 2); // lui + add
        let total: usize = groups.values().map(Vec::len).sum();
        assert_eq!(total, 3, "out-of-range id dropped");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(Some(0.5)), " 50.0");
        assert_eq!(pct(None), "    -");
    }
}
