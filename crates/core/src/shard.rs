//! Intra-workload sharded profiling: split one workload's recorded
//! `(pc, value)` stream across workers, profile the shards in parallel,
//! and `merge()` the results.
//!
//! PR 1 parallelized *across* workloads; this module parallelizes
//! *within* one, which is what helps when a single large workload
//! dominates the suite. Two split strategies exist, with different
//! exactness guarantees:
//!
//! * **By entity** ([`partition_by_entity`]) — events are routed by
//!   `pc % shards`, so each instruction's full value subsequence lands
//!   on exactly one shard, in order. Per-entity profiler state (TNV
//!   tables, LVP chains, the convergent state machine, periodic-sample
//!   countdowns) never observes a difference from a serial pass, and the
//!   merge is a disjoint union — the sharded result is **bit-identical**
//!   to serial for the full, convergent, and periodic-sampled profilers.
//!   The one exception is [`SampleStrategy::Random`], whose single
//!   profiler-wide generator depends on the global event interleaving.
//! * **By time** ([`split_by_time`]) — contiguous chunks of the stream.
//!   Scalar counters (executions, zeros, LVP including the shard-boundary
//!   hit) and exact histograms still merge exactly, but each shard's TNV
//!   table evicts independently, so merged `Inv-Top` is a slightly deeper
//!   under-estimate than a serial table's (quantified by the ε-bound in
//!   the differential oracle). It is the right split when one entity
//!   dominates the stream and entity routing cannot balance the work.
//!
//! `vprof profile-suite --shards N` and `vprof replay --shards N` use the
//! by-entity split, so their output is byte-identical to a serial run.
//!
//! [`SampleStrategy::Random`]: crate::sampled::SampleStrategy::Random

use vp_instrument::parallel_map;

use crate::convergent::ConvergentProfiler;
use crate::instr_profile::InstructionProfiler;
use crate::phase::AdaptiveProfiler;
use crate::sampled::SampledProfiler;

/// A profiler that can consume a raw `(pc, value)` event stream and fold
/// in shard results — what the sharded trace-replay path requires.
pub trait StreamProfiler: Send {
    /// Feeds one event.
    fn observe(&mut self, pc: u32, value: u64);

    /// Feeds a batch of events in stream order.
    fn observe_batch(&mut self, events: &[(u32, u64)]) {
        for &(pc, value) in events {
            self.observe(pc, value);
        }
    }

    /// Folds in the result of a *later* shard.
    fn merge_shard(&mut self, later: Self);
}

impl StreamProfiler for InstructionProfiler {
    fn observe(&mut self, pc: u32, value: u64) {
        InstructionProfiler::observe(self, pc, value);
    }

    fn observe_batch(&mut self, events: &[(u32, u64)]) {
        InstructionProfiler::observe_batch(self, events);
    }

    fn merge_shard(&mut self, later: InstructionProfiler) {
        self.merge(later);
    }
}

impl StreamProfiler for ConvergentProfiler {
    fn observe(&mut self, pc: u32, value: u64) {
        ConvergentProfiler::observe(self, pc, value);
    }

    fn merge_shard(&mut self, later: ConvergentProfiler) {
        self.merge(later);
    }
}

impl StreamProfiler for AdaptiveProfiler {
    fn observe(&mut self, pc: u32, value: u64) {
        AdaptiveProfiler::observe(self, pc, value);
    }

    fn merge_shard(&mut self, later: AdaptiveProfiler) {
        self.merge(later);
    }
}

impl StreamProfiler for SampledProfiler {
    fn observe(&mut self, pc: u32, value: u64) {
        SampledProfiler::observe(self, pc, value);
    }

    fn merge_shard(&mut self, later: SampledProfiler) {
        self.merge(later);
    }
}

/// Routes each event to shard `pc % shards`, preserving per-entity order.
/// Every entity's full subsequence lands on exactly one shard.
///
/// **Invariant:** `shards >= 1`. Callers are expected to reject zero
/// before routing (the CLI turns `--shards 0` into an argument error);
/// this function debug-asserts the invariant and, in release builds,
/// clamps to 1 rather than dividing by zero.
pub fn partition_by_entity(events: &[(u32, u64)], shards: usize) -> Vec<Vec<(u32, u64)>> {
    debug_assert!(shards > 0, "partition_by_entity requires at least one shard");
    let shards = shards.max(1);
    let mut parts: Vec<Vec<(u32, u64)>> = (0..shards).map(|_| Vec::new()).collect();
    for &event in events {
        parts[event.0 as usize % shards].push(event);
    }
    parts
}

/// Splits the stream into up to `shards` contiguous chunks of near-equal
/// length (fewer when there are fewer events than shards).
///
/// **Invariant:** `shards >= 1`, handled as in [`partition_by_entity`].
pub fn split_by_time(events: &[(u32, u64)], shards: usize) -> Vec<&[(u32, u64)]> {
    debug_assert!(shards > 0, "split_by_time requires at least one shard");
    let shards = shards.max(1);
    if events.is_empty() {
        return vec![events];
    }
    let chunk = events.len().div_ceil(shards);
    events.chunks(chunk).collect()
}

/// Work-stealing over-decomposition factor: each requested shard worker
/// gets this many entity partitions to claim from.
const STEAL_FACTOR: usize = 8;

/// Number of entity partitions [`profile_sharded`] creates for a request
/// of `shards` workers: 1 for a serial request, `shards ×`
/// [`STEAL_FACTOR`] otherwise.
///
/// Budgeted callers must split their `MemBudget` by *this* count (not by
/// `shards`): one partition profiler exists per partition, so splitting
/// by the partition count keeps the per-profiler budgets summing to at
/// most the whole.
pub fn partition_count(shards: usize) -> usize {
    if shards <= 1 {
        1
    } else {
        shards * STEAL_FACTOR
    }
}

/// Profiles `events` across `shards` workers and merges the partition
/// profilers in partition order. `make` builds one identically-configured
/// profiler per partition.
///
/// The scheduler is work-stealing in the claim-based sense: the stream
/// is over-decomposed into [`partition_count`] entity partitions —
/// several per worker — and [`parallel_map`]'s workers claim partitions
/// dynamically. A skewed `pc % N` split (one bucket holding a dominant
/// entity) therefore pins only the one worker that claims the hot
/// partition, while the others drain the remaining partitions instead of
/// idling behind a static 1:1 assignment. Entity-disjointness keeps the
/// merged result bit-identical to serial no matter which worker ran
/// which partition, and the partition-order merge keeps intermediate
/// state deterministic too.
///
/// With `shards <= 1` the stream is profiled on the calling thread (via
/// the batched path), which is the serial reference the differential
/// oracle compares against.
pub fn profile_sharded<P, F>(events: &[(u32, u64)], shards: usize, make: F) -> P
where
    P: StreamProfiler,
    F: Fn() -> P + Sync,
{
    if shards <= 1 {
        let mut profiler = make();
        profiler.observe_batch(events);
        return profiler;
    }
    let parts = partition_by_entity(events, partition_count(shards));
    let mut results: Vec<P> = parallel_map(shards, &parts, |part| {
        let mut profiler = make();
        profiler.observe_batch(part);
        profiler
    });
    let mut merged = results.remove(0);
    for later in results {
        merged.merge_shard(later);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::track::TrackerConfig;

    fn stream() -> Vec<(u32, u64)> {
        (0..5000u32).map(|i| (i % 11, u64::from(i % 7) * 3)).collect()
    }

    #[test]
    fn partition_routes_every_event_once() {
        let events = stream();
        let parts = partition_by_entity(&events, 4);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), events.len());
        for (shard, part) in parts.iter().enumerate() {
            assert!(part.iter().all(|&(pc, _)| pc as usize % 4 == shard));
        }
    }

    #[test]
    fn split_by_time_is_contiguous_and_complete() {
        let events = stream();
        let parts = split_by_time(&events, 7);
        let glued: Vec<(u32, u64)> = parts.concat();
        assert_eq!(glued, events);
        assert!(parts.len() <= 7);
        assert!(split_by_time(&[], 3).concat().is_empty());
    }

    #[test]
    fn sharded_full_profile_matches_serial() {
        let events = stream();
        let serial =
            profile_sharded(&events, 1, || InstructionProfiler::new(TrackerConfig::with_full()));
        for shards in [2, 3, 8, 64] {
            let sharded = profile_sharded(&events, shards, || {
                InstructionProfiler::new(TrackerConfig::with_full())
            });
            assert_eq!(sharded.metrics(), serial.metrics(), "shards={shards}");
            assert_eq!(sharded.tnv_events(), serial.tnv_events(), "shards={shards}");
        }
    }

    #[test]
    fn more_shards_than_entities_leaves_empty_shards() {
        let events = vec![(0u32, 5u64); 100];
        let sharded =
            profile_sharded(&events, 16, || InstructionProfiler::new(TrackerConfig::default()));
        assert_eq!(sharded.profiled_instructions(), 1);
        assert_eq!(sharded.metrics()[0].executions, 100);
    }

    #[test]
    fn empty_stream_profiles_to_nothing() {
        let p = profile_sharded(&[], 4, || InstructionProfiler::new(TrackerConfig::default()));
        assert_eq!(p.profiled_instructions(), 0);
    }

    #[test]
    fn work_stealing_overdecomposition_stays_exact_on_skew() {
        // One dominant entity plus a sprinkle of others: the hot
        // partition pins a single worker while the rest are claimed
        // dynamically — and the result must still be bit-identical.
        let mut events: Vec<(u32, u64)> = (0..20_000u64).map(|i| (3, i % 13)).collect();
        events.extend((0..500u64).map(|i| ((i % 29) as u32, i)));
        let serial =
            profile_sharded(&events, 1, || InstructionProfiler::new(TrackerConfig::with_full()));
        for shards in [2, 4] {
            assert!(partition_count(shards) > shards, "several partitions per worker");
            let sharded = profile_sharded(&events, shards, || {
                InstructionProfiler::new(TrackerConfig::with_full())
            });
            assert_eq!(sharded.metrics(), serial.metrics(), "shards={shards}");
            assert_eq!(sharded.tnv_events(), serial.tnv_events(), "shards={shards}");
        }
    }
}
