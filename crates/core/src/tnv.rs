//! The Top-N-Value (TNV) table — the paper's central data structure.
//!
//! A TNV table keeps, per profiled entity (instruction, memory location or
//! procedure parameter), a small fixed number of `(value, count)` pairs.
//! The paper's replacement policy is *LFU with periodic clearing*: the
//! table is kept ordered by count, the top entries form the **steady**
//! part, and at a fixed interval of profiled occurrences the bottom
//! **clear** part is emptied, so that new values always have head room to
//! compete for a steady slot, while values that were only briefly hot
//! during one program phase cannot permanently squat in the table.
//!
//! Plain LFU and LRU variants are provided as baselines for the
//! replacement-policy accuracy experiment (E6).

use std::fmt;

use vp_obs::TnvEvents;

/// Replacement policy of a [`TnvTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// The paper's policy: least-frequently-used replacement restricted to
    /// the bottom part of the table, with that bottom part cleared every
    /// `clear_interval` profiled occurrences. `steady` entries at the top
    /// are never victims.
    LfuClear {
        /// Number of top entries protected from clearing.
        steady: usize,
        /// Profiled occurrences between clears of the bottom part.
        clear_interval: u64,
    },
    /// Plain LFU: on a miss with a full table, the entry with the smallest
    /// count is replaced. Vulnerable to early-phase values monopolizing
    /// the table.
    Lfu,
    /// LRU: on a miss with a full table, the least recently *seen* value is
    /// replaced. Tracks recency, not frequency.
    Lru,
}

impl Default for Policy {
    /// The paper's configuration for an 8-entry table: the top half is
    /// steady and the bottom half is cleared every 2000 occurrences.
    fn default() -> Self {
        Policy::LfuClear { steady: 4, clear_interval: 2000 }
    }
}

/// One `(value, count)` pair of a TNV table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TnvEntry {
    /// The profiled value.
    pub value: u64,
    /// How many profiled occurrences produced this value while it was
    /// resident (an under-count of the true frequency, which is what the
    /// accuracy experiment E6 quantifies).
    pub count: u64,
    /// Recency stamp (only meaningful under [`Policy::Lru`]).
    last_seen: u64,
}

/// A Top-N-Value table.
///
/// ```
/// use vp_core::tnv::{Policy, TnvTable};
///
/// let mut tnv = TnvTable::new(4, Policy::Lfu);
/// for v in [7, 7, 7, 3, 3, 9] {
///     tnv.observe(v);
/// }
/// assert_eq!(tnv.top(1)[0].value, 7);
/// assert_eq!(tnv.top(1)[0].count, 3);
/// assert_eq!(tnv.observations(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TnvTable {
    entries: Vec<TnvEntry>,
    capacity: usize,
    policy: Policy,
    observations: u64,
    since_clear: u64,
    clock: u64,
    events: TnvEvents,
}

impl TnvTable {
    /// Creates an empty table with room for `capacity` values.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0, or if an `LfuClear` policy's steady part
    /// does not leave at least one clearable slot.
    pub fn new(capacity: usize, policy: Policy) -> TnvTable {
        assert!(capacity > 0, "TNV table capacity must be positive");
        if let Policy::LfuClear { steady, clear_interval } = policy {
            assert!(steady < capacity, "steady part must leave clearable slots");
            assert!(clear_interval > 0, "clear interval must be positive");
        }
        TnvTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            policy,
            observations: 0,
            since_clear: 0,
            clock: 0,
            events: TnvEvents::default(),
        }
    }

    /// The paper's default table: 8 entries, LFU with lower-half clearing.
    pub fn with_default_policy() -> TnvTable {
        TnvTable::new(8, Policy::default())
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Number of values profiled into this table.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Self-profiling event counts: every observation is exactly one of a
    /// hit, an insert into a free slot, or an eviction, so
    /// `events().observations() == observations()` always holds.
    pub fn events(&self) -> TnvEvents {
        self.events
    }

    /// Records one occurrence of `value`.
    pub fn observe(&mut self, value: u64) {
        self.observations += 1;
        self.clock += 1;

        if let Some(pos) = self.entries.iter().position(|e| e.value == value) {
            self.events.hits += 1;
            self.entries[pos].count += 1;
            self.entries[pos].last_seen = self.clock;
            // Restore count order by bubbling the entry up.
            let mut i = pos;
            while i > 0 && self.entries[i - 1].count < self.entries[i].count {
                self.entries.swap(i - 1, i);
                i -= 1;
            }
        } else if self.entries.len() < self.capacity {
            self.events.inserts += 1;
            self.entries.push(TnvEntry { value, count: 1, last_seen: self.clock });
        } else {
            self.events.evictions += 1;
            match self.policy {
                Policy::LfuClear { .. } | Policy::Lfu => {
                    // Replace the lowest-count entry (always in the bottom
                    // part under LfuClear, since the table is count-ordered).
                    let last = self.entries.len() - 1;
                    self.entries[last] = TnvEntry { value, count: 1, last_seen: self.clock };
                }
                Policy::Lru => {
                    let victim = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_seen)
                        .map(|(i, _)| i)
                        .expect("table is full, so non-empty");
                    self.entries[victim] = TnvEntry { value, count: 1, last_seen: self.clock };
                    self.entries.sort_by_key(|e| std::cmp::Reverse(e.count));
                }
            }
        }

        if let Policy::LfuClear { steady, clear_interval } = self.policy {
            self.since_clear += 1;
            if self.since_clear >= clear_interval {
                self.since_clear = 0;
                let keep = steady.min(self.entries.len());
                self.events.clears += 1;
                self.events.cleared_entries += (self.entries.len() - keep) as u64;
                self.entries.truncate(keep);
            }
        }
    }

    /// Records a batch of occurrences. Semantically identical to calling
    /// [`observe`](TnvTable::observe) once per value (the differential
    /// oracle asserts this), but the dominant case of an invariant stream
    /// — another occurrence of the current top value with no clear due —
    /// is inlined, so batched replay skips the position scan and policy
    /// dispatch that `observe` pays per event.
    pub fn observe_batch(&mut self, values: &[u64]) {
        // Hoist the policy so the fast-path guard is one compare. A
        // top-slot hit needs no re-ordering (the top count only grows)
        // and no replacement, so the only side effect left to rule out
        // is the periodic clear.
        let (clearing, clear_interval) = match self.policy {
            Policy::LfuClear { clear_interval, .. } => (true, clear_interval),
            Policy::Lfu | Policy::Lru => (false, u64::MAX),
        };
        for &value in values {
            match self.entries.first_mut() {
                Some(top)
                    if top.value == value
                        && (!clearing || self.since_clear + 1 < clear_interval) =>
                {
                    self.observations += 1;
                    self.clock += 1;
                    self.events.hits += 1;
                    top.count += 1;
                    top.last_seen = self.clock;
                    if clearing {
                        self.since_clear += 1;
                    }
                }
                _ => self.observe(value),
            }
        }
    }

    /// Merges another table (e.g. collected over a different shard of the
    /// same entity's value stream) into this one: resident `(value, count)`
    /// pairs are combined, re-ranked by count, and the top `capacity`
    /// survivors kept.
    ///
    /// Counts of values resident in both tables sum exactly, but each
    /// input count is already an under-estimate of the true frequency
    /// (evicted residencies are lost), so the merged counts remain an
    /// **under-estimate** — `inv_top` of the merged table is still a lower
    /// bound on the exact invariance, exactly like a single-run table's.
    /// Values dropped at the capacity cut lose their counts, mirroring an
    /// eviction.
    ///
    /// `other` is treated as the *later* shard: its recency stamps are
    /// rebased after this table's, so LRU replacement stays meaningful.
    /// The clear countdown of an `LfuClear` policy carries over combined;
    /// merging itself never triggers a clear.
    ///
    /// # Panics
    ///
    /// Panics if the two tables differ in capacity or policy.
    pub fn merge(&mut self, other: &TnvTable) {
        assert_eq!(self.capacity, other.capacity, "cannot merge TNV tables of different capacity");
        assert_eq!(self.policy, other.policy, "cannot merge TNV tables of different policy");
        for e in &other.entries {
            match self.entries.iter_mut().find(|s| s.value == e.value) {
                Some(s) => {
                    s.count += e.count;
                    s.last_seen = self.clock + e.last_seen;
                }
                None => self.entries.push(TnvEntry {
                    value: e.value,
                    count: e.count,
                    last_seen: self.clock + e.last_seen,
                }),
            }
        }
        // Re-rank; ties break by value so merging is deterministic
        // regardless of residency order.
        self.entries.sort_by(|a, b| b.count.cmp(&a.count).then(a.value.cmp(&b.value)));
        self.entries.truncate(self.capacity);
        // The pushes above may have grown the allocation past `capacity`;
        // give the excess back so `footprint_bytes` (capacity-based, and
        // now ground truth for the arena-backed budget) stays exact after
        // shard merges too.
        self.entries.shrink_to(self.capacity);
        self.observations += other.observations;
        self.clock += other.clock;
        self.events.merge(&other.events);
        if let Policy::LfuClear { clear_interval, .. } = self.policy {
            self.since_clear = (self.since_clear + other.since_clear) % clear_interval;
        }
    }

    /// The `n` highest-count entries, best first.
    pub fn top(&self, n: usize) -> &[TnvEntry] {
        &self.entries[..n.min(self.entries.len())]
    }

    /// All resident entries, best first.
    pub fn entries(&self) -> &[TnvEntry] {
        &self.entries
    }

    /// Sum of the counts of the top `n` entries.
    pub fn top_count(&self, n: usize) -> u64 {
        self.top(n).iter().map(|e| e.count).sum()
    }

    /// The most frequent resident value, if any value has been profiled.
    pub fn top_value(&self) -> Option<u64> {
        self.entries.first().map(|e| e.value)
    }

    /// Memory footprint of the table in bytes: fixed at construction,
    /// independent of how many distinct values the entity produces — the
    /// paper's space argument for TNV tables over full histograms.
    pub fn footprint_bytes(&self) -> usize {
        std::mem::size_of::<TnvTable>() + self.capacity * std::mem::size_of::<TnvEntry>()
    }

    /// Estimated invariance over the top `n` values: the fraction of all
    /// profiled occurrences covered by the top `n` resident counts. This is
    /// the paper's `Inv-Top` metric (an *estimate*, since counts of evicted
    /// residencies are lost).
    pub fn inv_top(&self, n: usize) -> f64 {
        if self.observations == 0 {
            return 0.0;
        }
        self.top_count(n) as f64 / self.observations as f64
    }
}

impl fmt::Display for TnvTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TNV[{}/{}]", self.entries.len(), self.capacity)?;
        for e in &self.entries {
            write!(f, " {}:{}", e.value, e.count)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_free_slots_first() {
        let mut t = TnvTable::new(3, Policy::Lfu);
        t.observe(1);
        t.observe(2);
        t.observe(3);
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.observations(), 3);
    }

    #[test]
    fn counts_and_ordering() {
        let mut t = TnvTable::new(4, Policy::Lfu);
        for v in [5, 6, 6, 6, 5, 7] {
            t.observe(v);
        }
        let top: Vec<(u64, u64)> = t.entries().iter().map(|e| (e.value, e.count)).collect();
        assert_eq!(top, vec![(6, 3), (5, 2), (7, 1)]);
        assert_eq!(t.top_value(), Some(6));
        assert_eq!(t.top_count(2), 5);
        assert!((t.inv_top(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lfu_replaces_minimum() {
        let mut t = TnvTable::new(2, Policy::Lfu);
        t.observe(1);
        t.observe(1);
        t.observe(2);
        t.observe(3); // replaces 2 (count 1)
        let values: Vec<u64> = t.entries().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![1, 3]);
    }

    #[test]
    fn lfu_phase_change_pathology() {
        // Pure LFU: an early hot value blocks later, hotter values from
        // accumulating counts — the pathology that motivates clearing.
        let mut t = TnvTable::new(2, Policy::Lfu);
        for _ in 0..100 {
            t.observe(1);
        }
        t.observe(2);
        // Phase change: value 3 becomes dominant, but values 2/3 keep
        // evicting each other from the single bottom slot.
        for _ in 0..100 {
            t.observe(3);
            t.observe(4);
        }
        // 3 never accumulates: its residency is reset by 4 each time.
        assert!(t.top(1)[0].value == 1);
        assert!(t.inv_top(2) < 0.5);
    }

    #[test]
    fn lfu_clear_recovers_from_phase_change() {
        // The clear interval bounds how much frequency a challenger can
        // accumulate before its count resets, so it must exceed the steady
        // entry's count for a phase change to be visible — with an interval
        // of 150 a value seen 150 times in a row out-counts the old steady
        // value (count 100), bubbles into the steady slot, and the former
        // champion falls into the clearable part.
        let mut t = TnvTable::new(2, Policy::LfuClear { steady: 1, clear_interval: 150 });
        for _ in 0..100 {
            t.observe(1);
        }
        // Phase change to a new dominant value.
        for _ in 0..400 {
            t.observe(3);
        }
        // 3 must have displaced 1 in the steady part.
        assert_eq!(t.top_value(), Some(3));
    }

    #[test]
    fn clearing_drops_bottom_part() {
        let mut t = TnvTable::new(4, Policy::LfuClear { steady: 2, clear_interval: 8 });
        for v in [1, 1, 1, 2, 2, 3, 4] {
            t.observe(v);
        }
        assert_eq!(t.entries().len(), 4);
        t.observe(1); // 8th observation triggers the clear
        assert_eq!(t.entries().len(), 2);
        let values: Vec<u64> = t.entries().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![1, 2]);
    }

    #[test]
    fn lru_evicts_stalest() {
        let mut t = TnvTable::new(2, Policy::Lru);
        t.observe(1);
        t.observe(2);
        t.observe(1); // refresh 1
        t.observe(3); // evicts 2
        let mut values: Vec<u64> = t.entries().iter().map(|e| e.value).collect();
        values.sort_unstable();
        assert_eq!(values, vec![1, 3]);
    }

    #[test]
    fn inv_top_bounds() {
        let mut t = TnvTable::with_default_policy();
        assert_eq!(t.inv_top(1), 0.0);
        for v in 0..100u64 {
            t.observe(v % 10);
        }
        let i1 = t.inv_top(1);
        let i4 = t.inv_top(4);
        let i8 = t.inv_top(8);
        assert!(i1 <= i4 && i4 <= i8);
        assert!(i8 <= 1.0);
        assert!(i1 > 0.0);
    }

    #[test]
    fn constant_stream_is_fully_invariant() {
        let mut t = TnvTable::with_default_policy();
        for _ in 0..5000 {
            t.observe(42);
        }
        assert!((t.inv_top(1) - 1.0).abs() < 1e-12);
        assert_eq!(t.observations(), 5000);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TnvTable::new(0, Policy::Lfu);
    }

    #[test]
    #[should_panic(expected = "steady part")]
    fn bad_steady_panics() {
        let _ = TnvTable::new(4, Policy::LfuClear { steady: 4, clear_interval: 10 });
    }

    #[test]
    fn merge_combines_counts_and_reranks() {
        let mut a = TnvTable::new(4, Policy::Lfu);
        for v in [1, 1, 2] {
            a.observe(v);
        }
        let mut b = TnvTable::new(4, Policy::Lfu);
        for v in [2, 2, 2, 3] {
            b.observe(v);
        }
        a.merge(&b);
        let pairs: Vec<(u64, u64)> = a.entries().iter().map(|e| (e.value, e.count)).collect();
        assert_eq!(pairs, vec![(2, 4), (1, 2), (3, 1)]);
        assert_eq!(a.observations(), 7);
    }

    #[test]
    fn merge_truncates_to_capacity_keeping_top_counts() {
        let mut a = TnvTable::new(2, Policy::Lfu);
        for v in [1, 1, 1, 2] {
            a.observe(v);
        }
        let mut b = TnvTable::new(2, Policy::Lfu);
        for v in [3, 3, 4] {
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.entries().len(), 2);
        let values: Vec<u64> = a.entries().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![1, 3]);
        // Observations include those of the dropped entries: still an
        // under-estimate, never an over-estimate.
        assert_eq!(a.observations(), 7);
        assert!(a.inv_top(2) < 1.0);
    }

    #[test]
    fn merge_is_deterministic_under_count_ties() {
        let mut a = TnvTable::new(4, Policy::Lfu);
        a.observe(9);
        let mut b = TnvTable::new(4, Policy::Lfu);
        b.observe(1);
        a.merge(&b);
        // Equal counts: smaller value ranks first regardless of merge order.
        let values: Vec<u64> = a.entries().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![1, 9]);
    }

    #[test]
    #[should_panic(expected = "different capacity")]
    fn merge_rejects_mismatched_capacity() {
        let mut a = TnvTable::new(2, Policy::Lfu);
        let b = TnvTable::new(4, Policy::Lfu);
        a.merge(&b);
    }

    #[test]
    fn events_account_for_every_observation() {
        let mut t = TnvTable::new(2, Policy::LfuClear { steady: 1, clear_interval: 4 });
        for v in [1, 1, 2, 3, 3, 3, 4, 5] {
            t.observe(v);
        }
        let ev = t.events();
        assert_eq!(ev.observations(), t.observations());
        assert!(ev.hits > 0 && ev.inserts > 0 && ev.evictions > 0);
        assert_eq!(ev.clears, 2); // every 4th observation
        assert!(ev.cleared_entries >= ev.clears);
    }

    #[test]
    fn merge_sums_events() {
        let mut a = TnvTable::new(2, Policy::Lfu);
        for v in [1, 1, 2, 3] {
            a.observe(v);
        }
        let mut b = TnvTable::new(2, Policy::Lfu);
        for v in [4, 4, 5] {
            b.observe(v);
        }
        let mut expect = a.events();
        expect.merge(&b.events());
        a.merge(&b);
        assert_eq!(a.events(), expect);
        assert_eq!(a.events().observations(), a.observations());
    }

    #[test]
    fn display_lists_entries() {
        let mut t = TnvTable::new(2, Policy::Lfu);
        t.observe(9);
        let s = t.to_string();
        assert!(s.contains("9:1"), "{s}");
    }
}
