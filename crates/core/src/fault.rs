//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] is a set of *fault points* — stable string names such
//! as `workload/gcc` or `durable/tmp-written` — each armed with an action
//! and a hit window. Production code calls [`FaultPlan::fire`] at its
//! fault points; with an empty plan (the default) that is a slice
//! iteration over zero entries, so the hooks cost nothing in normal runs.
//!
//! Plans are either built in-process (tests) or parsed from the
//! `VP_FAULTS` environment variable (CLI smoke tests, CI):
//!
//! ```text
//! VP_FAULTS=panic:workload/gcc,err:durable/append@2,kill:checkpoint/appended@4
//! ```
//!
//! Each comma-separated entry is `ACTION:POINT[@START][xCOUNT]`:
//!
//! * `ACTION` — `panic`, `err` (an injected `io::Error`), `slow` (a fixed
//!   busy spin, no clock reads), `kill` (`process::abort`, simulating
//!   an unclean death such as SIGKILL), `hang` (block until
//!   cooperatively cancelled — the deterministic stand-in for an
//!   infinite loop, used to exercise deadline enforcement), or
//!   `disconnect` (drop the connection owning the fault point — only the
//!   serve daemon's session points can, others treat it as `err`);
//! * `POINT` — the fault-point name, matched exactly;
//! * `@START` — first hit (1-based) on which the fault fires (default 1);
//! * `xCOUNT` — number of consecutive hits that fire (default unlimited),
//!   so `panic:workload/li@1x2` panics twice and then succeeds — the shape
//!   a retry budget must absorb.
//!
//! Everything is counter-driven: no clocks, no randomness, so injected
//! failures are reproducible byte-for-byte.
//!
//! # Plans are per-process
//!
//! A plan's hit counters live in the process that parsed it: they are
//! *not* shared across process boundaries. The distributed suite runner
//! passes `VP_FAULTS` down to every `vprof worker` child through the
//! environment, so each worker parses its own plan and counts its own
//! hits from zero. A spec like `kill:worker/frame@2` therefore means
//! "the second result frame *of whichever worker hits the point twice
//! first*" — with several workers racing, which one dies is
//! scheduling-dependent even though *that* some worker dies is not.
//!
//! To pin a fault to one specific process, set `VP_FAULTS_SCOPE` next to
//! `VP_FAULTS`. Each process has an identity — `parent` by default, or
//! whatever `VP_FAULT_SELF` says (the executor sets `worker:<idx>` on
//! each child it spawns, with indices monotonically increasing across
//! restarts). [`FaultPlan::from_env`] yields an *empty* plan in every
//! process whose identity differs from the scope, so
//! `VP_FAULTS_SCOPE=worker:0 VP_FAULTS=kill:worker/frame@2` kills
//! exactly the first spawned worker, exactly once — its replacement is
//! `worker:2` (or higher) and never matches.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding the process-wide fault spec.
pub const FAULTS_ENV: &str = "VP_FAULTS";

/// Environment variable restricting `VP_FAULTS` to one process identity
/// (e.g. `worker:0`). Unset = the plan applies to every process that
/// inherits it.
pub const SCOPE_ENV: &str = "VP_FAULTS_SCOPE";

/// Environment variable carrying the current process's fault identity.
/// Unset = `parent`. The worker executor sets it to `worker:<idx>` on
/// every child it spawns.
pub const SELF_ENV: &str = "VP_FAULT_SELF";

/// Fault point hit by the executor just before spawning a worker
/// process (`err` makes the spawn fail).
pub const WORKER_SPAWN_POINT: &str = "worker/spawn";

/// Fault point hit by a worker just before writing each result frame.
/// `kill` here writes *half* the frame, flushes, and aborts — the
/// deterministic model of a worker SIGKILLed mid-write, leaving a torn
/// frame for the parent to reject.
pub const WORKER_FRAME_POINT: &str = "worker/frame";

/// Fault point hit by a worker during orderly shutdown, after its last
/// assignment completed.
pub const WORKER_EXIT_POINT: &str = "worker/exit";

/// Fault point hit by the `vprof serve` daemon once per accepted
/// connection, before the session handshake (`err` rejects the
/// connection; `kill` models the daemon dying in the accept path).
pub const SERVE_ACCEPT_POINT: &str = "serve/accept";

/// Fault point hit by a session thread once per protocol frame it
/// processes. `disconnect` drops the connection without a goodbye —
/// the deterministic model of a client (or network) vanishing
/// mid-session. The daemon also fires the tenant-qualified point
/// `session/<tenant>/frame`, so a fault can target one session even
/// with many running concurrently.
pub const SESSION_FRAME_POINT: &str = "session/frame";

/// Fault point hit once per durable session checkpoint, just before the
/// checkpoint record is appended. `kill` here is the serve kill-and-
/// resume oracle: the daemon dies with chunks in the log but no ack
/// sent, and the client must retransmit from the last acked chunk.
pub const SESSION_CHECKPOINT_POINT: &str = "session/checkpoint";

/// What a triggered fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with `fault injected: <point>`.
    Panic,
    /// Return an injected [`io::Error`] from [`FaultPlan::fire`].
    Err,
    /// Burn a fixed amount of CPU (deterministic iteration count), then
    /// continue normally — for making a step slow without clock reads.
    Slow,
    /// Abort the process without unwinding or flushing, like SIGKILL.
    Kill,
    /// Block until cooperatively cancelled (see
    /// [`vp_instrument::cancel`]) — a hung workload that only a deadline
    /// can cut loose. Without an armed deadline this blocks forever,
    /// which is the point: it is the deterministic model of an infinite
    /// loop.
    Hang,
    /// Drop a connection abruptly, no goodbye frame. Only meaningful at
    /// connection-owning fault points (the serve daemon matches it via
    /// [`FaultPlan::check`] and closes the socket); [`FaultPlan::fire`]
    /// treats it like [`FaultAction::Err`] so a plan armed with it never
    /// silently passes elsewhere.
    Disconnect,
}

impl FaultAction {
    fn parse(text: &str) -> Result<FaultAction, String> {
        match text {
            "panic" => Ok(FaultAction::Panic),
            "err" => Ok(FaultAction::Err),
            "slow" => Ok(FaultAction::Slow),
            "kill" => Ok(FaultAction::Kill),
            "hang" => Ok(FaultAction::Hang),
            "disconnect" => Ok(FaultAction::Disconnect),
            other => {
                Err(format!("unknown fault action `{other}` (panic|err|slow|kill|hang|disconnect)"))
            }
        }
    }
}

#[derive(Debug)]
struct Entry {
    action: FaultAction,
    point: String,
    /// First hit (1-based) that fires.
    start: u64,
    /// Number of consecutive firing hits; `None` = unlimited.
    count: Option<u64>,
    hits: AtomicU64,
}

impl Entry {
    fn parse(text: &str) -> Result<Entry, String> {
        let (action, rest) = text
            .split_once(':')
            .ok_or_else(|| format!("fault entry `{text}` is not ACTION:POINT[@START][xCOUNT]"))?;
        let action = FaultAction::parse(action)?;
        let (point, start, count) = match rest.rsplit_once('@') {
            Some((point, window)) => {
                let (start, count) = match window.split_once('x') {
                    Some((s, c)) => (s, Some(c)),
                    None => (window, None),
                };
                let start: u64 = start
                    .parse()
                    .map_err(|_| format!("bad fault window `@{window}` in `{text}`"))?;
                let count: Option<u64> = count
                    .map(str::parse)
                    .transpose()
                    .map_err(|_| format!("bad fault window `@{window}` in `{text}`"))?;
                if start == 0 || count == Some(0) {
                    return Err(format!("fault window `@{window}` in `{text}` must be >= 1"));
                }
                (point, start, count)
            }
            None => (rest, 1, None),
        };
        if point.is_empty() {
            return Err(format!("empty fault point in `{text}`"));
        }
        Ok(Entry { action, point: point.to_string(), start, count, hits: AtomicU64::new(0) })
    }

    /// Registers one hit and reports whether this entry fires on it.
    fn hit(&self) -> bool {
        let hit = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        hit >= self.start && self.count.is_none_or(|c| hit < self.start + c)
    }
}

/// A parsed, thread-safe fault plan. See the module docs for the spec
/// grammar. Hit counters are per-plan, so independently constructed plans
/// (e.g. in parallel tests) never interfere.
#[derive(Debug, Default)]
pub struct FaultPlan {
    entries: Vec<Entry>,
}

impl FaultPlan {
    /// A plan with no faults — every [`fire`](FaultPlan::fire) is a no-op.
    pub fn empty() -> FaultPlan {
        FaultPlan { entries: Vec::new() }
    }

    /// Parses a comma-separated fault spec (see module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut entries = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            entries.push(Entry::parse(part)?);
        }
        Ok(FaultPlan { entries })
    }

    /// Builds the plan from `$VP_FAULTS` (empty plan when unset).
    ///
    /// When `$VP_FAULTS_SCOPE` is set and names a different process than
    /// this one's `$VP_FAULT_SELF` identity (`parent` when unset), the
    /// spec is still *validated* but the returned plan is empty — the
    /// fault belongs to some other process in the tree.
    pub fn from_env() -> Result<FaultPlan, String> {
        let plan = match std::env::var(FAULTS_ENV) {
            Ok(spec) => FaultPlan::parse(&spec).map_err(|e| format!("{FAULTS_ENV}: {e}"))?,
            Err(_) => return Ok(FaultPlan::empty()),
        };
        let scope = std::env::var(SCOPE_ENV).ok();
        let own = std::env::var(SELF_ENV).ok();
        if !scope_matches(scope.as_deref(), own.as_deref()) {
            return Ok(FaultPlan::empty());
        }
        Ok(plan)
    }

    /// Whether the plan has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registers a hit of `point` and returns the action of a fault that
    /// fires on it, without executing the action.
    pub fn check(&self, point: &str) -> Option<FaultAction> {
        let mut fired = None;
        for entry in self.entries.iter().filter(|e| e.point == point) {
            if entry.hit() {
                fired = fired.or(Some(entry.action));
            }
        }
        fired
    }

    /// Registers a hit of `point` and executes the armed action, if any:
    /// panics, aborts, spins, or returns an injected error. The normal
    /// (un-armed) outcome is `Ok(())`.
    pub fn fire(&self, point: &str) -> io::Result<()> {
        match self.check(point) {
            None => Ok(()),
            Some(FaultAction::Panic) => panic!("fault injected: {point}"),
            Some(FaultAction::Err) => Err(io::Error::other(format!("fault injected: {point}"))),
            Some(FaultAction::Kill) => std::process::abort(),
            Some(FaultAction::Slow) => {
                // ~10^8 dependent multiplies: long enough to be "slow",
                // no clocks involved, result kept live via black_box.
                let mut acc = 0x9e37_79b9_7f4a_7c15u64;
                for _ in 0..100_000_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                }
                std::hint::black_box(acc);
                Ok(())
            }
            // Only the daemon's connection-owning points can actually
            // drop a socket; everywhere else the injected error keeps
            // the plan from passing silently.
            Some(FaultAction::Disconnect) => {
                Err(io::Error::other(format!("fault injected: {point} (disconnect)")))
            }
            Some(FaultAction::Hang) => {
                // Spin-sleep until the current cancel token fires, then
                // unwind like any cooperatively cancelled work. The sleep
                // keeps the hang cheap; the cancellation decides *when*
                // it ends, so no clock appears in any assertion.
                loop {
                    if vp_instrument::cancel::cancelled() {
                        vp_instrument::cancel::unwind();
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }
}

/// Whether a fault scope (`$VP_FAULTS_SCOPE`) selects a process whose
/// identity (`$VP_FAULT_SELF`) is `own`. No scope selects everyone; no
/// identity means `parent`.
pub fn scope_matches(scope: Option<&str>, own: Option<&str>) -> bool {
    match scope {
        None => true,
        Some(scope) => scope == own.unwrap_or("parent"),
    }
}

/// The process-wide plan parsed from `$VP_FAULTS` once, consulted by the
/// durable-persistence layer. Panics on a malformed spec — an operator
/// typo should fail loudly, not silently disable the fault.
pub fn global() -> &'static FaultPlan {
    static GLOBAL: OnceLock<FaultPlan> = OnceLock::new();
    GLOBAL.get_or_init(|| FaultPlan::from_env().unwrap_or_else(|e| panic!("{e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.check("workload/gcc"), None);
        assert!(plan.fire("anything").is_ok());
    }

    #[test]
    fn parses_actions_and_windows() {
        let plan =
            FaultPlan::parse("panic:workload/gcc,err:durable/append@2,slow:a/b@3x1").unwrap();
        assert_eq!(plan.entries.len(), 3);
        assert_eq!(plan.entries[0].action, FaultAction::Panic);
        assert_eq!(plan.entries[0].start, 1);
        assert_eq!(plan.entries[0].count, None);
        assert_eq!(plan.entries[1].action, FaultAction::Err);
        assert_eq!(plan.entries[1].start, 2);
        assert_eq!(plan.entries[2].action, FaultAction::Slow);
        assert_eq!(plan.entries[2].count, Some(1));
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(FaultPlan::parse("explode:workload/gcc").is_err());
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic:").is_err());
        assert!(FaultPlan::parse("panic:p@zero").is_err());
        assert!(FaultPlan::parse("panic:p@0").is_err());
        assert!(FaultPlan::parse("panic:p@1x0").is_err());
        // Commas and whitespace are tolerated; empty entries skipped.
        assert!(FaultPlan::parse(" , panic:p ,, ").unwrap().entries.len() == 1);
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn window_counting_is_exact() {
        // Fires on hits 2 and 3 only.
        let plan = FaultPlan::parse("err:p@2x2").unwrap();
        assert_eq!(plan.check("p"), None);
        assert_eq!(plan.check("p"), Some(FaultAction::Err));
        assert_eq!(plan.check("p"), Some(FaultAction::Err));
        assert_eq!(plan.check("p"), None);
        // Other points never match.
        assert_eq!(plan.check("q"), None);
    }

    #[test]
    fn point_names_may_contain_x() {
        // `vortex` ends in 'x'; the count suffix must only bind after '@'.
        let plan = FaultPlan::parse("panic:workload/vortex").unwrap();
        assert_eq!(plan.entries[0].point, "workload/vortex");
        assert_eq!(plan.check("workload/vortex"), Some(FaultAction::Panic));
    }

    #[test]
    fn hang_blocks_until_cancelled_then_unwinds_as_timeout() {
        use vp_instrument::cancel;
        let plan = FaultPlan::parse("hang:stuck/point").unwrap();
        // A pre-cancelled token makes the hang end on its first poll, so
        // the test is instant and clock-free.
        let token = cancel::CancelToken::new();
        token.cancel();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cancel::with_token(&token, || plan.fire("stuck/point"))
        }));
        assert!(cancel::is_cancel_payload(caught.unwrap_err().as_ref()));
    }

    #[test]
    fn scope_selects_exactly_one_identity() {
        // No scope: everyone fires.
        assert!(scope_matches(None, None));
        assert!(scope_matches(None, Some("worker:3")));
        // Scoped: only the named identity fires; unset self is `parent`.
        assert!(scope_matches(Some("parent"), None));
        assert!(scope_matches(Some("worker:0"), Some("worker:0")));
        assert!(!scope_matches(Some("worker:0"), Some("worker:1")));
        assert!(!scope_matches(Some("worker:0"), None));
        assert!(!scope_matches(Some("parent"), Some("worker:0")));
    }

    #[test]
    fn fire_executes_err_and_panic() {
        let plan = FaultPlan::parse("err:io/point,panic:boom/point").unwrap();
        let err = plan.fire("io/point").unwrap_err();
        assert!(err.to_string().contains("fault injected: io/point"));
        let caught = std::panic::catch_unwind(|| plan.fire("boom/point"));
        let payload = *caught.unwrap_err().downcast::<String>().unwrap();
        assert_eq!(payload, "fault injected: boom/point");
    }
}
