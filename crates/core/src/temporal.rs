//! Temporal (interval) value profiling: invariance over time.
//!
//! A single whole-run invariance number hides *phases* — a value can be
//! fully invariant within each program phase yet look semi-invariant
//! overall (the gcc workload's mode word: 100% within each compile phase,
//! 33% whole-run). The interval profiler splits an instruction's execution
//! stream into fixed-length windows and keeps per-window metrics, the data
//! behind phase plots and behind choosing the TNV clear interval.

use std::collections::HashMap;

use vp_instrument::Analysis;
use vp_sim::{InstrEvent, Machine};

use crate::phase::{self, WindowSig};
use crate::track::{TrackerConfig, ValueTracker};

/// Per-window snapshot of one instruction's value behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowMetrics {
    /// Executions in this window (== window length except the last).
    pub executions: u64,
    /// `Inv-Top(1)` within the window alone.
    pub inv_top1: f64,
    /// The window's dominant value.
    pub top_value: Option<u64>,
}

#[derive(Debug, Clone)]
struct TemporalState {
    current: ValueTracker,
    windows: Vec<WindowMetrics>,
}

/// Profiles instruction values in fixed-length execution windows.
///
/// ```
/// use vp_core::temporal::TemporalProfiler;
/// use vp_core::track::TrackerConfig;
///
/// let profiler = TemporalProfiler::new(TrackerConfig::default(), 1000);
/// assert_eq!(profiler.window_length(), 1000);
/// ```
#[derive(Debug, Clone)]
pub struct TemporalProfiler {
    config: TrackerConfig,
    window: u64,
    states: HashMap<u32, TemporalState>,
}

impl TemporalProfiler {
    /// Creates an interval profiler with `window` executions per window.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0.
    pub fn new(config: TrackerConfig, window: u64) -> TemporalProfiler {
        assert!(window > 0, "window length must be positive");
        TemporalProfiler { config, window, states: HashMap::new() }
    }

    /// The configured window length.
    pub fn window_length(&self) -> u64 {
        self.window
    }

    fn snapshot(tracker: &ValueTracker) -> WindowMetrics {
        WindowMetrics {
            executions: tracker.executions(),
            inv_top1: tracker.inv_top(1),
            top_value: tracker.tnv().top_value(),
        }
    }

    /// Completed (and the trailing partial) windows of one instruction, in
    /// execution order. Empty if the instruction never executed.
    pub fn windows(&self, index: u32) -> Vec<WindowMetrics> {
        let Some(state) = self.states.get(&index) else { return Vec::new() };
        let mut out = state.windows.clone();
        if state.current.executions() > 0 {
            out.push(Self::snapshot(&state.current));
        }
        out
    }

    /// Instructions profiled, ordered by index.
    pub fn instructions(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.states.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The number of *phases* of an instruction: maximal runs of adjacent
    /// windows sharing the same dominant value. A stationary instruction
    /// has 1; gcc's mode load has 3.
    pub fn phase_count(&self, index: u32) -> usize {
        let windows = self.windows(index);
        let mut phases = 0;
        let mut last: Option<Option<u64>> = None;
        for w in &windows {
            if last != Some(w.top_value) {
                phases += 1;
                last = Some(w.top_value);
            }
        }
        phases
    }

    /// Phase signatures of one instruction's windows — the same
    /// [`WindowSig`] the online adaptive detector computes, derived
    /// offline from the interval profile (dominant value plus its
    /// quantised share, here taken from the window's `Inv-Top(1)`).
    /// Feeds the detector's shift rule for offline analysis and lets
    /// tests cross-validate the online detector against the exact
    /// interval profile. Windows that saw no values are skipped.
    pub fn signatures(&self, index: u32) -> Vec<WindowSig> {
        self.windows(index)
            .iter()
            .filter_map(|w| {
                let top_value = w.top_value?;
                let top = (w.inv_top1 * w.executions as f64).round() as u64;
                Some(WindowSig {
                    top_value,
                    share16: phase::quantize_share(top, w.executions.max(1)),
                })
            })
            .collect()
    }

    /// Offline shift points per the adaptive detector's rule
    /// ([`phase::shifted`]): indices `i` such that window `i-1 → i`
    /// constitutes a distribution shift.
    pub fn shift_points(&self, index: u32) -> Vec<usize> {
        let sigs = self.signatures(index);
        sigs.windows(2)
            .enumerate()
            .filter_map(|(i, pair)| phase::shifted(&pair[0], &pair[1]).then_some(i + 1))
            .collect()
    }

    /// Mean within-window invariance, weighted by window executions. When
    /// this is much higher than the whole-run `Inv-Top(1)`, the
    /// instruction is *phase-wise invariant* — the prime case for the TNV
    /// clearing policy and for re-specialization.
    pub fn windowed_invariance(&self, index: u32) -> f64 {
        let windows = self.windows(index);
        let total: u64 = windows.iter().map(|w| w.executions).sum();
        if total == 0 {
            return 0.0;
        }
        windows.iter().map(|w| w.inv_top1 * w.executions as f64).sum::<f64>() / total as f64
    }
}

impl Analysis for TemporalProfiler {
    fn after_instr(&mut self, _machine: &Machine, event: &InstrEvent) {
        let Some((_, value)) = event.dest else { return };
        let config = self.config;
        let window = self.window;
        let state = self.states.entry(event.index).or_insert_with(|| TemporalState {
            current: ValueTracker::new(config),
            windows: Vec::new(),
        });
        state.current.observe(value);
        if state.current.executions() >= window {
            state.windows.push(Self::snapshot(&state.current));
            state.current = ValueTracker::new(config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{AluOp, Instruction, Reg};

    fn feed(profiler: &mut TemporalProfiler, index: u32, values: impl Iterator<Item = u64>) {
        let program = vp_asm::assemble(".text\nmain: sys exit\n").unwrap();
        let machine = vp_sim::Machine::new(program, vp_sim::MachineConfig::new()).unwrap();
        for value in values {
            let event = InstrEvent {
                index,
                instr: Instruction::Alu { op: AluOp::Add, rd: Reg::R1, rs: Reg::R0, rt: Reg::R0 },
                dest: Some((Reg::R1, value)),
                mem: None,
                taken: None,
                next_index: index + 1,
            };
            profiler.after_instr(&machine, &event);
        }
    }

    #[test]
    fn phases_of_a_three_phase_stream() {
        // 3 phases of 1000 executions, fully invariant within each.
        let mut p = TemporalProfiler::new(TrackerConfig::default(), 100);
        let stream = std::iter::repeat_n(1, 1000)
            .chain(std::iter::repeat_n(2, 1000))
            .chain(std::iter::repeat_n(3, 1000));
        feed(&mut p, 0, stream);
        assert_eq!(p.windows(0).len(), 30);
        assert_eq!(p.phase_count(0), 3);
        // Whole-run invariance is 1/3; windowed invariance is 1.0.
        assert!((p.windowed_invariance(0) - 1.0).abs() < 1e-12);
        assert_eq!(p.instructions(), vec![0]);
    }

    #[test]
    fn stationary_stream_is_one_phase() {
        let mut p = TemporalProfiler::new(TrackerConfig::default(), 50);
        feed(&mut p, 4, std::iter::repeat_n(9, 500));
        assert_eq!(p.phase_count(4), 1);
        assert!((p.windowed_invariance(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn varying_stream_has_low_windowed_invariance() {
        let mut p = TemporalProfiler::new(TrackerConfig::default(), 50);
        feed(&mut p, 4, 0..500u64);
        assert!(p.windowed_invariance(4) < 0.05);
    }

    #[test]
    fn partial_trailing_window_is_reported() {
        let mut p = TemporalProfiler::new(TrackerConfig::default(), 100);
        feed(&mut p, 0, std::iter::repeat_n(1, 250));
        let windows = p.windows(0);
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[2].executions, 50);
        assert_eq!(p.windows(99), Vec::new());
        assert_eq!(p.phase_count(99), 0);
    }

    #[test]
    fn signatures_and_shift_points_follow_the_detector_rule() {
        let mut p = TemporalProfiler::new(TrackerConfig::default(), 100);
        let stream = std::iter::repeat_n(1, 300).chain(std::iter::repeat_n(2, 300));
        feed(&mut p, 0, stream);
        let sigs = p.signatures(0);
        assert_eq!(sigs.len(), 6);
        assert!(sigs[..3].iter().all(|s| s.top_value == 1 && s.share16 == 16));
        assert!(sigs[3..].iter().all(|s| s.top_value == 2 && s.share16 == 16));
        assert_eq!(p.shift_points(0), vec![3], "exactly one shift, at the phase boundary");
        assert_eq!(p.shift_points(99), Vec::<usize>::new());
    }

    #[test]
    fn stationary_stream_has_no_shift_points() {
        let mut p = TemporalProfiler::new(TrackerConfig::default(), 50);
        feed(&mut p, 4, std::iter::repeat_n(9, 500));
        assert!(p.shift_points(4).is_empty());
        assert!(p.signatures(4).iter().all(|s| s.top_value == 9));
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_window_panics() {
        let _ = TemporalProfiler::new(TrackerConfig::default(), 0);
    }
}
