//! Per-workload arena accounting and the slab-style value-count table
//! behind [`crate::track::FullProfile`].
//!
//! PR 5's governor could only *estimate* resident bytes, because
//! `FullProfile` sat on `std::collections::HashMap`, whose bucket layout
//! (control bytes, group padding) is an implementation detail. This
//! module removes the estimate in two moves:
//!
//! * [`ValueMap`] — an open-addressed `u64 → u64` count table whose
//!   entire storage is one `Box<[Slot]>` of power-of-two length. Its
//!   footprint is `capacity × 16` bytes *by construction*: there is
//!   nothing else to account for, so `footprint_bytes()` is ground
//!   truth, not a model.
//! * [`Arena`] — the bump-style byte meter a governed workload charges
//!   every tracker allocation against. `live_bytes` tracks the exact
//!   resident total; [`Arena::mark`] records the high-water mark of
//!   *settled* states (the governor marks after enforcement, so the peak
//!   never reports a transient the budget already rolled back).
//!
//! Both are deterministic: capacities are a pure function of the
//! observation sequence, so governed runs — and their reported peaks —
//! reproduce bit-for-bit.

/// Exact byte meter for one workload's profile state.
///
/// The arena does not own allocations; it owns the *accounting*. Every
/// tracker block in a governed profiler has a capacity-determined exact
/// size ([`ValueMap::footprint_bytes`], `TnvTable::footprint_bytes`), so
/// charging those sizes here makes `live_bytes` the true resident total
/// and `high_water_bytes` the true peak — which is what
/// `GovernorStats::bytes_peak` now reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Arena {
    live: usize,
    high: usize,
}

impl Arena {
    /// An empty meter.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Records `bytes` of new allocation.
    pub fn charge(&mut self, bytes: usize) {
        self.live += bytes;
    }

    /// Records `bytes` freed (a degraded histogram, a dropped tracker).
    pub fn release(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.live, "released more than was charged");
        self.live = self.live.saturating_sub(bytes);
    }

    /// Folds the current live total into the high-water mark. Callers
    /// mark at settled points — after budget enforcement, not between
    /// charge and release — so the peak reflects states that actually
    /// persisted.
    pub fn mark(&mut self) {
        self.high = self.high.max(self.live);
    }

    /// Exact resident bytes right now.
    pub fn live_bytes(&self) -> usize {
        self.live
    }

    /// Highest `live_bytes` ever observed by [`Arena::mark`].
    pub fn high_water_bytes(&self) -> usize {
        self.high
    }

    /// Overwrites the live total (merging shards replaces this meter's
    /// view with the combined profiler's exact footprint). The next
    /// `mark` folds the new level into the high-water mark.
    pub fn reset_live(&mut self, bytes: usize) {
        self.live = bytes;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    count: u64, // 0 ⟺ slot empty; live entries always have count ≥ 1
}

/// Open-addressed `u64 → u64` count map with linear probing over a
/// single power-of-two slab.
///
/// Replaces `HashMap<u64, u64>` in the exact histogram for two reasons:
/// the slab makes the footprint exact (see module docs), and the
/// fixed mixer below replaces SipHash — value counting needs speed and
/// determinism, not DoS keying. Grows by doubling at 7/8 load, so
/// capacity — and therefore footprint — is a deterministic, monotone
/// function of the observation sequence.
#[derive(Debug, Clone, Default)]
pub struct ValueMap {
    slots: Box<[Slot]>,
    len: usize,
}

/// SplitMix64 finalizer: full-avalanche mixing so clustered values
/// (small integers, aligned pointers) spread across the slab.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ValueMap {
    /// An empty map (no slab until the first insertion).
    pub fn new() -> ValueMap {
        ValueMap::default()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated slots (the whole slab, not just the occupied part).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The count for `key`, or `None` if it was never bumped.
    pub fn get(&self, key: u64) -> Option<u64> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            let slot = &self.slots[i];
            if slot.count == 0 {
                return None;
            }
            if slot.key == key {
                return Some(slot.count);
            }
            i = (i + 1) & mask;
        }
    }

    /// Adds `by` (> 0) to `key`'s count, inserting it at zero first.
    pub fn bump(&mut self, key: u64, by: u64) {
        debug_assert!(by > 0, "a zero bump would plant an empty-looking live slot");
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.count == 0 {
                *slot = Slot { key, count: by };
                self.len += 1;
                return;
            }
            if slot.key == key {
                slot.count += by;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Iterates `(key, count)` pairs in slab order (an arbitrary but
    /// deterministic order — callers that need a canonical order sort).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slots.iter().filter(|s| s.count != 0).map(|s| (s.key, s.count))
    }

    /// Exact bytes of the slab. The map's entire heap state is the one
    /// `Box<[Slot]>`, so this is not an estimate.
    pub fn footprint_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<Slot>()
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(8);
        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); new_cap].into());
        let mask = new_cap - 1;
        for slot in old.iter().filter(|s| s.count != 0) {
            let mut i = (mix(slot.key) as usize) & mask;
            while self.slots[i].count != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = *slot;
        }
    }
}

impl PartialEq for ValueMap {
    /// Content equality: same keys with same counts, regardless of slab
    /// capacity or slot placement.
    fn eq(&self, other: &ValueMap) -> bool {
        self.len == other.len && self.iter().all(|(k, c)| other.get(k) == Some(c))
    }
}

impl Eq for ValueMap {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn slot_is_sixteen_bytes() {
        // The footprint-exactness story is `capacity × 16`; a padding
        // surprise here would silently turn it back into an estimate.
        assert_eq!(std::mem::size_of::<Slot>(), 16);
    }

    #[test]
    fn value_map_matches_hash_map_reference() {
        let mut map = ValueMap::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        // Clustered, colliding, and wide keys; repeated bumps.
        let keys: Vec<u64> =
            (0..5000u64).map(|i| (i * i) % 701).chain((0..64).map(|i| i << 56)).collect();
        for (n, &k) in keys.iter().enumerate() {
            let by = (n as u64 % 3) + 1;
            map.bump(k, by);
            *reference.entry(k).or_insert(0) += by;
        }
        assert_eq!(map.len(), reference.len());
        for (&k, &c) in &reference {
            assert_eq!(map.get(k), Some(c), "key {k}");
        }
        assert_eq!(map.get(u64::MAX), None);
        let mut collected: Vec<(u64, u64)> = map.iter().collect();
        collected.sort_unstable();
        let mut expect: Vec<(u64, u64)> = reference.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(collected, expect);
    }

    #[test]
    fn capacity_is_deterministic_and_monotone() {
        let mut a = ValueMap::new();
        let mut b = ValueMap::new();
        let mut last_cap = 0;
        for i in 0..10_000u64 {
            a.bump(i % 3001, 1);
            b.bump(i % 3001, 1);
            assert!(a.capacity() >= last_cap, "slab shrank at {i}");
            last_cap = a.capacity();
            assert_eq!(a.capacity(), b.capacity(), "same stream, same slab at {i}");
        }
        assert!(last_cap.is_power_of_two());
        assert_eq!(a.footprint_bytes(), last_cap * 16);
        // 7/8 load ceiling actually holds.
        assert!(a.len() * 8 <= a.capacity() * 7);
    }

    #[test]
    fn content_equality_ignores_slab_shape() {
        // Same content via different insertion orders (and therefore
        // possibly different probe placements) compares equal.
        let mut fwd = ValueMap::new();
        let mut rev = ValueMap::new();
        for k in 0..100u64 {
            fwd.bump(k, k + 1);
        }
        for k in (0..100u64).rev() {
            rev.bump(k, k + 1);
        }
        assert_eq!(fwd, rev);
        rev.bump(7, 1);
        assert_ne!(fwd, rev);
    }

    #[test]
    fn arena_tracks_live_and_marked_peak() {
        let mut arena = Arena::new();
        arena.charge(100);
        arena.mark();
        arena.charge(400);
        // Not yet marked: a transient spike the governor rolls back
        // before settling must not become the reported peak.
        arena.release(300);
        arena.mark();
        assert_eq!(arena.live_bytes(), 200);
        assert_eq!(arena.high_water_bytes(), 200);
        arena.release(200);
        arena.mark();
        assert_eq!(arena.live_bytes(), 0);
        assert_eq!(arena.high_water_bytes(), 200, "peak is sticky");
        arena.reset_live(5000);
        arena.mark();
        assert_eq!(arena.high_water_bytes(), 5000);
    }
}
