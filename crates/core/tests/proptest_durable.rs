//! Property tests for the crash-safety layer: JSONL tail recovery must
//! keep every complete record through an arbitrary byte-truncation, and
//! the profile integrity footer must detect every single-byte corruption
//! in strict mode while salvaging a clean row prefix in lenient mode.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use vp_core::durable::{
    append_jsonl_with, crc32, parse_profile_checked, render_profile_durable, Integrity,
    IntegrityMode,
};
use vp_core::{EntityMetrics, FaultPlan};

fn jsonl(values: &[u64]) -> String {
    values.iter().map(|v| format!("{{\"schema\":1,\"v\":{v}}}\n")).collect()
}

fn scratch_file(prefix: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("vp_proptest_durable");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{prefix}_{}.jsonl", NEXT.fetch_add(1, Ordering::Relaxed)))
}

fn arb_metrics() -> impl Strategy<Value = Vec<EntityMetrics>> {
    prop::collection::vec((any::<u16>(), any::<u32>(), any::<u16>(), any::<bool>()), 1..12)
        .prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (id_salt, execs, frac, with_opts))| {
                    // Ids must be unique; fractions in [0, 1].
                    let frac = f64::from(frac) / f64::from(u16::MAX);
                    EntityMetrics {
                        id: (i as u64) << 16 | u64::from(id_salt),
                        executions: u64::from(execs) + 1,
                        lvp: frac,
                        inv_top1: frac,
                        inv_topn: frac,
                        inv_all1: with_opts.then_some(frac),
                        inv_alln: with_opts.then_some(frac),
                        pct_zero: frac,
                        distinct: with_opts.then_some(u64::from(execs)),
                        top_value: with_opts.then_some(u64::from(id_salt)),
                    }
                })
                .collect()
        })
}

proptest! {
    /// Truncating a valid JSONL log at ANY byte offset and then appending
    /// yields a file where every line is complete JSON: the surviving
    /// records are exactly the longest complete-line prefix of the
    /// original, followed by the appended records. No torn line survives.
    #[test]
    fn truncate_then_append_keeps_every_complete_line(
        values in prop::collection::vec(any::<u64>(), 0..20),
        cut_salt in any::<u32>(),
        appended in any::<u64>(),
    ) {
        let original = jsonl(&values);
        let cut = cut_salt as usize % (original.len() + 1);
        let truncated = &original.as_bytes()[..cut];

        let path = scratch_file("truncate");
        std::fs::write(&path, truncated).unwrap();
        let extra = jsonl(&[appended]);
        let dropped = append_jsonl_with(&FaultPlan::empty(), &path, &extra).unwrap();
        let result = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();

        // The recovered byte count is whatever followed the last newline.
        let keep = truncated.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        prop_assert_eq!(dropped, (truncated.len() - keep) as u64);

        // Every line of the result parses as JSON...
        for line in result.lines() {
            prop_assert!(
                vp_obs::Json::parse(line).is_ok(),
                "torn line survived: {line:?}"
            );
        }
        // ...and the content is exactly: complete-line prefix + append.
        let expected = format!("{}{extra}", &original[..keep]);
        prop_assert_eq!(result, expected);
    }

    /// CRC32 guarantees detection of any single-byte error, so flipping
    /// any bit of any byte of a footered profile file must make a strict
    /// load fail (or break UTF-8, which fails even earlier).
    #[test]
    fn single_byte_corruption_is_always_detected_in_strict_mode(
        metrics in arb_metrics(),
        at_salt in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let good = render_profile_durable(&metrics);
        let mut bytes = good.clone().into_bytes();
        let at = at_salt as usize % bytes.len();
        bytes[at] ^= flip;
        match String::from_utf8(bytes) {
            Err(_) => {} // not even text any more: trivially detected
            Ok(corrupted) => {
                prop_assert!(
                    parse_profile_checked(&corrupted, IntegrityMode::Strict).is_err(),
                    "flip of byte {at} by {flip:#04x} went undetected"
                );
            }
        }
    }

    /// Lenient loads of a truncated footered profile recover exactly the
    /// complete rows and report the damage (never `Verified`), as long as
    /// the header survived.
    #[test]
    fn truncation_salvages_a_row_prefix_in_lenient_mode(
        metrics in arb_metrics(),
        cut_salt in any::<u32>(),
    ) {
        let good = render_profile_durable(&metrics);
        let header_end = good.find('\n').unwrap() + 1;
        // Cut anywhere past the header, always removing more than the
        // final newline (a file missing only its trailing newline is
        // content-complete and may legitimately verify).
        let cut = header_end + cut_salt as usize % (good.len() - 1 - header_end);
        let truncated = &good[..cut];

        let checked = parse_profile_checked(truncated, IntegrityMode::Lenient).unwrap();
        // Recovered rows are a prefix of the file's rows (the TSV format
        // rounds floats to nine decimals, so compare against the parsed
        // full file, not the in-memory originals) — except possibly the
        // final recovered row, which a cut inside its last numeric field
        // can shorten into a different-but-parseable value. That is
        // exactly what the integrity verdict below reports.
        let on_disk = vp_core::parse_profile(&good).unwrap();
        prop_assert!(checked.metrics.len() <= on_disk.len());
        let complete = checked.metrics.len().saturating_sub(1);
        prop_assert_eq!(&checked.metrics[..complete], &on_disk[..complete]);
        // Anything short of the full file cannot claim verification.
        prop_assert!(
            !checked.integrity.is_verified(),
            "truncated file verified: {:?}",
            checked.integrity
        );
        if let Integrity::Corrupt { rows, expected_crc, actual_crc, .. } = checked.integrity {
            prop_assert!(expected_crc != actual_crc || rows != metrics.len());
        }
    }
}

#[test]
fn crc32_matches_reference_implementation() {
    // Bitwise (non-table) CRC32 as an independent cross-check.
    fn reference(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
        }
        !crc
    }
    for data in [&b""[..], b"a", b"123456789", b"\x00\xff\x00\xff", b"value profiling"] {
        assert_eq!(crc32(data), reference(data), "{data:?}");
    }
}
