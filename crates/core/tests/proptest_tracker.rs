//! Property tests: `ValueTracker`/`FullProfile` against naive reference
//! computations, plus structural TNV invariants, over arbitrary value
//! streams.

use std::collections::HashMap;

use proptest::prelude::*;
use vp_core::tnv::{Policy, TnvTable};
use vp_core::track::{TrackerConfig, ValueTracker};

/// Streams drawn from a small alphabet (so collisions and invariance
/// actually occur) mixed with occasional arbitrary values.
fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(prop_oneof![4 => 0u64..8, 1 => any::<u64>()], 1..400)
}

fn arb_policy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Lfu),
        Just(Policy::Lru),
        (1usize..8, 1u64..500)
            .prop_map(|(steady, clear_interval)| Policy::LfuClear { steady, clear_interval }),
    ]
}

proptest! {
    /// Exact metrics match a naive reference implementation.
    #[test]
    fn tracker_matches_reference(stream in arb_stream()) {
        let mut tracker = ValueTracker::new(TrackerConfig::with_full());
        for &v in &stream {
            tracker.observe(v);
        }
        // Reference: histogram + linear scans.
        let mut hist: HashMap<u64, u64> = HashMap::new();
        let mut lvp_hits = 0u64;
        let mut zeros = 0u64;
        for (i, &v) in stream.iter().enumerate() {
            *hist.entry(v).or_insert(0) += 1;
            if i > 0 && stream[i - 1] == v {
                lvp_hits += 1;
            }
            if v == 0 {
                zeros += 1;
            }
        }
        let n = stream.len() as f64;
        prop_assert_eq!(tracker.executions(), stream.len() as u64);
        prop_assert!((tracker.lvp() - lvp_hits as f64 / n).abs() < 1e-12);
        prop_assert!((tracker.pct_zero() - zeros as f64 / n).abs() < 1e-12);
        prop_assert_eq!(tracker.distinct(), Some(hist.len() as u64));
        let mut counts: Vec<u64> = hist.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        for k in [1usize, 2, 4, 8] {
            let expected: u64 = counts.iter().take(k).sum();
            let got = tracker.inv_all(k).unwrap();
            prop_assert!((got - expected as f64 / n).abs() < 1e-12, "k={k}");
        }
        prop_assert_eq!(tracker.last_value(), stream.last().copied());
    }

    /// TNV structural invariants hold for every policy and stream: counts
    /// never exceed observations, estimates never exceed exact invariance,
    /// top(k) is count-sorted, and the table never overflows.
    #[test]
    fn tnv_structural_invariants(stream in arb_stream(), policy in arb_policy(), cap in 1usize..12) {
        // Clamp the steady part to the capacity.
        let policy = match policy {
            Policy::LfuClear { steady, clear_interval } if steady >= cap => {
                Policy::LfuClear { steady: cap - 1, clear_interval }
            }
            p => p,
        };
        if cap == 1 {
            // LfuClear needs at least one clearable slot.
            if matches!(policy, Policy::LfuClear { .. }) {
                return Ok(());
            }
        }
        let mut tnv = TnvTable::new(cap, policy);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for &v in &stream {
            tnv.observe(v);
            *exact.entry(v).or_insert(0) += 1;
        }
        prop_assert!(tnv.entries().len() <= cap);
        prop_assert_eq!(tnv.observations(), stream.len() as u64);
        let total: u64 = tnv.entries().iter().map(|e| e.count).sum();
        prop_assert!(total <= tnv.observations());
        // Sorted by count, descending.
        for pair in tnv.entries().windows(2) {
            prop_assert!(pair[0].count >= pair[1].count);
        }
        // Resident counts never exceed the exact counts, so Inv-Top is a
        // lower bound of Inv-All at every width.
        for e in tnv.entries() {
            prop_assert!(e.count <= exact[&e.value], "value {} over-counted", e.value);
        }
        let mut counts: Vec<u64> = exact.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        for k in 1..=cap {
            let exact_k: u64 = counts.iter().take(k).sum();
            prop_assert!(
                tnv.inv_top(k) <= exact_k as f64 / stream.len() as f64 + 1e-12,
                "k={k}"
            );
        }
    }

    /// With capacity >= distinct values, every policy is exact.
    #[test]
    fn tnv_exact_when_table_is_large_enough(
        stream in prop::collection::vec(0u64..6, 1..300),
        policy in arb_policy(),
    ) {
        // Clearing discards counts, so exactness only holds for policies
        // that never clear resident entries below the distinct count.
        let policy = match policy {
            Policy::LfuClear { clear_interval, .. } => {
                Policy::LfuClear { steady: 6, clear_interval }
            }
            p => p,
        };
        let mut tnv = TnvTable::new(8, policy);
        let mut exact: HashMap<u64, u64> = HashMap::new();
        for &v in &stream {
            tnv.observe(v);
            *exact.entry(v).or_insert(0) += 1;
        }
        // With <= 6 distinct values, 8 slots and a steady part of 6, no
        // value with a top-6 count is ever evicted.
        let mut counts: Vec<u64> = exact.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = counts.iter().take(8).sum();
        prop_assert!((tnv.inv_top(8) - top as f64 / stream.len() as f64).abs() < 1e-12);
    }
}
