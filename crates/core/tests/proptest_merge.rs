//! Property tests for the shard-merge semantics: splitting a value stream
//! at an arbitrary point and merging the two shards' profiles must agree
//! with profiling the unsplit stream — exactly for scalar counters and
//! full profiles, within a tolerance for the TNV sketch.

use proptest::prelude::*;
use vp_core::tnv::TnvTable;
use vp_core::track::{FullProfile, TrackerConfig, ValueTracker};

/// Streams drawn from a small alphabet (so collisions and invariance
/// actually occur) mixed with occasional arbitrary values.
fn arb_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(prop_oneof![4 => 0u64..8, 1 => any::<u64>()], 1..400)
}

fn tracker_over(values: &[u64], config: TrackerConfig) -> ValueTracker {
    let mut t = ValueTracker::new(config);
    for &v in values {
        t.observe(v);
    }
    t
}

proptest! {
    /// Merging two FullProfile shards is exact: identical observation
    /// count, distinct-value count, per-value counts and Inv-All.
    #[test]
    fn full_profile_shard_merge_is_exact(stream in arb_stream(), cut in any::<u16>()) {
        let cut = usize::from(cut) % (stream.len() + 1);
        let (a, b) = stream.split_at(cut);
        let mut whole = FullProfile::new();
        for &v in &stream {
            whole.observe(v);
        }
        let mut merged = FullProfile::new();
        for &v in a {
            merged.observe(v);
        }
        let mut later = FullProfile::new();
        for &v in b {
            later.observe(v);
        }
        merged.merge(&later);
        prop_assert_eq!(merged.observations(), whole.observations());
        prop_assert_eq!(merged.distinct(), whole.distinct());
        prop_assert_eq!(merged.top(4), whole.top(4));
        for &v in &stream {
            prop_assert_eq!(merged.count_of(v), whole.count_of(v));
        }
        prop_assert!((merged.inv_all(1) - whole.inv_all(1)).abs() < 1e-12);
    }

    /// ValueTracker scalar counters (executions, %zero, LVP — including
    /// the hit across the shard boundary) and full-profile metrics are
    /// exact under shard merge.
    #[test]
    fn tracker_shard_merge_counters_are_exact(stream in arb_stream(), cut in any::<u16>()) {
        let cut = usize::from(cut) % (stream.len() + 1);
        let (a, b) = stream.split_at(cut);
        let whole = tracker_over(&stream, TrackerConfig::with_full());
        let mut merged = tracker_over(a, TrackerConfig::with_full());
        merged.merge(&tracker_over(b, TrackerConfig::with_full()));

        prop_assert_eq!(merged.executions(), whole.executions());
        prop_assert!((merged.pct_zero() - whole.pct_zero()).abs() < 1e-12);
        prop_assert!((merged.lvp() - whole.lvp()).abs() < 1e-12,
            "lvp merged {} != whole {}", merged.lvp(), whole.lvp());
        prop_assert_eq!(merged.last_value(), whole.last_value());
        prop_assert_eq!(merged.distinct(), whole.distinct());
        prop_assert_eq!(merged.inv_all(1), whole.inv_all(1));
    }

    /// The TNV sketch under shard merge is a (bounded) under-estimate:
    /// never above the unsharded table's Inv-Top(1) estimate plus
    /// rounding, and within a coarse ε of the truth on small-alphabet
    /// streams where the table is not thrashing.
    #[test]
    fn tnv_shard_merge_is_close(stream in arb_stream(), cut in any::<u16>()) {
        let cut = usize::from(cut) % (stream.len() + 1);
        let (a, b) = stream.split_at(cut);
        let feed = |values: &[u64]| {
            let mut t = TnvTable::with_default_policy();
            for &v in values {
                t.observe(v);
            }
            t
        };
        let whole = feed(&stream);
        let mut merged = feed(a);
        merged.merge(&feed(b));

        prop_assert_eq!(merged.observations(), whole.observations());
        // Counts in the merged table never exceed the true frequency.
        let mut truth = std::collections::HashMap::new();
        for &v in &stream {
            *truth.entry(v).or_insert(0u64) += 1;
        }
        for e in merged.entries() {
            prop_assert!(e.count <= truth[&e.value],
                "merged count {} exceeds truth {} for {}", e.count, truth[&e.value], e.value);
        }
        // With an alphabet of ≤ 8 hot values and capacity 8, the sketch
        // estimate stays within ε of the unsharded estimate.
        let eps = 0.35;
        prop_assert!(merged.inv_top(1) <= whole.inv_top(1) + 1e-12 + eps);
        prop_assert!(merged.inv_top(1) + eps >= whole.inv_top(1) - 1e-12,
            "merged inv_top(1) {} far below unsharded {}", merged.inv_top(1), whole.inv_top(1));
    }

    /// Merging an empty shard (either side) is the identity.
    #[test]
    fn empty_shard_is_identity(stream in arb_stream()) {
        let whole = tracker_over(&stream, TrackerConfig::with_full());
        let mut left = tracker_over(&stream, TrackerConfig::with_full());
        left.merge(&ValueTracker::new(TrackerConfig::with_full()));
        let mut right = ValueTracker::new(TrackerConfig::with_full());
        right.merge(&whole);
        for t in [&left, &right] {
            prop_assert_eq!(t.executions(), whole.executions());
            prop_assert_eq!(t.inv_top(1), whole.inv_top(1));
            prop_assert_eq!(t.lvp(), whole.lvp());
            prop_assert_eq!(t.last_value(), whole.last_value());
        }
    }
}
