//! Oracle tests: the complete pipeline (assembler → emulator →
//! instrumentation → profiler) against micro-workloads whose metrics have
//! closed-form expectations.

use value_profiling::core::{track::TrackerConfig, InstructionProfiler};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::sim::MachineConfig;
use value_profiling::workloads::micro;

const EPS: f64 = 1e-9;

fn profile(w: &micro::MicroWorkload, selection: Selection) -> InstructionProfiler {
    let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
    Instrumenter::new()
        .select(selection)
        .run(&w.program, MachineConfig::new(), 50_000_000, &mut profiler)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    profiler
}

#[test]
fn constant_load_metrics() {
    let w = micro::constant_load(1000);
    let p = profile(&w, Selection::LoadsOnly);
    let m = p.metrics_for(w.target_index).expect("target profiled");
    assert_eq!(m.executions, w.executions);
    assert!((m.inv_top1 - w.inv_top1).abs() < EPS, "inv {}", m.inv_top1);
    assert!((m.inv_all1.unwrap() - w.inv_top1).abs() < EPS);
    assert!((m.lvp - w.lvp).abs() < EPS, "lvp {}", m.lvp);
    assert!((m.pct_zero - w.pct_zero).abs() < EPS);
    assert_eq!(m.distinct, Some(1));
    assert_eq!(m.top_value, Some(77));
}

#[test]
fn alternating_load_metrics() {
    let w = micro::alternating_load(1000);
    let p = profile(&w, Selection::LoadsOnly);
    let m = p.metrics_for(w.target_index).expect("target profiled");
    assert_eq!(m.executions, 1000);
    assert!((m.inv_top1 - 0.5).abs() < EPS);
    assert!((m.inv_topn - 1.0).abs() < EPS, "both values fit the table");
    assert!((m.lvp - 0.0).abs() < EPS);
    assert!((m.pct_zero - 0.5).abs() < EPS);
    assert_eq!(m.distinct, Some(2));
}

#[test]
fn counter_metrics() {
    let w = micro::counter(1000);
    let p = profile(&w, Selection::RegisterDefining);
    let m = p.metrics_for(w.target_index).expect("target profiled");
    assert_eq!(m.executions, 1000);
    assert!((m.inv_all1.unwrap() - 0.001).abs() < EPS);
    assert!((m.lvp - 0.0).abs() < EPS);
    assert!((m.pct_zero - 0.001).abs() < EPS);
    assert_eq!(m.distinct, Some(1000));
}

#[test]
fn phase_change_metrics() {
    let w = micro::phase_change_load(1000);
    let p = profile(&w, Selection::LoadsOnly);
    let m = p.metrics_for(w.target_index).expect("target profiled");
    assert_eq!(m.executions, 1000);
    assert!((m.inv_all1.unwrap() - 0.5).abs() < EPS);
    assert!((m.lvp - w.lvp).abs() < EPS);
    assert_eq!(m.distinct, Some(2));
}

#[test]
fn semi_invariant_metrics() {
    let w = micro::semi_invariant_load(1000);
    let p = profile(&w, Selection::LoadsOnly);
    let m = p.metrics_for(w.target_index).expect("target profiled");
    assert_eq!(m.executions, 900);
    assert!((m.inv_top1 - 1.0).abs() < EPS, "the common path always loads 21");
    // The rare-path load is a different static instruction.
    let rare = p
        .metrics()
        .into_iter()
        .find(|x| x.id != u64::from(w.target_index))
        .expect("rare load profiled");
    assert_eq!(rare.executions, 100);
    assert_eq!(rare.top_value, Some(4));
}

#[test]
fn tnv_estimate_never_exceeds_exact_invariance() {
    // Structural invariant: the TNV table under-counts (evicted residency
    // counts are lost), so Inv-Top <= Inv-All always.
    for w in [
        micro::constant_load(500),
        micro::alternating_load(500),
        micro::counter(500),
        micro::phase_change_load(500),
    ] {
        let p = profile(&w, Selection::RegisterDefining);
        for m in p.metrics() {
            assert!(
                m.inv_top1 <= m.inv_all1.unwrap() + EPS,
                "{}: instr {} inv_top1 {} > inv_all1 {}",
                w.name,
                m.id,
                m.inv_top1,
                m.inv_all1.unwrap()
            );
            assert!(m.inv_topn <= m.inv_alln.unwrap() + EPS);
            assert!(m.inv_top1 <= m.inv_topn + EPS);
            assert!(m.inv_alln.unwrap() <= 1.0 + EPS);
        }
    }
}
