//! Differential oracle for the zero-copy replay path: an mmap-backed
//! [`TraceFile`] must decode and profile **bit-identically** to the
//! read-to-`Vec` fallback over the golden suite traces and the
//! adversarial synthetic streams.
//!
//! The mapped and owned inputs go through the exact same `ChunkReader`
//! over `&[u8]`, so the only thing that can differ is where the bytes
//! live — which is precisely what this oracle pins down: same decoded
//! events, same profiler metrics, same telemetry counters, chunk by
//! chunk and end to end.

use value_profiling::core::{track::TrackerConfig, InstructionProfiler};
use value_profiling::instrument::{trace_codec, Selection, TraceFile};
use value_profiling::workloads::{suite, DataSet};
use vp_bench::value_stream;

/// Golden traces: real recorded workload streams plus synthetic shapes
/// (hot entity, colliding values, empty).
fn golden_streams() -> Vec<(String, Vec<(u32, u64)>)> {
    let mut out: Vec<(String, Vec<(u32, u64)>)> = Vec::new();
    for w in &suite()[..3] {
        out.push((
            format!("{}/loads", w.name()),
            value_stream(w, DataSet::Test, Selection::LoadsOnly),
        ));
    }
    out.push(("hot-entity".to_string(), (0..4000u64).map(|i| (3, i % 5)).collect()));
    out.push((
        "mixed".to_string(),
        (0..20_000u64).map(|i| ((i * 7 % 23) as u32, i % 11)).collect(),
    ));
    out.push(("empty".to_string(), Vec::new()));
    out
}

fn decode_all(file: &TraceFile) -> Vec<(u32, u64)> {
    let mut reader = file.reader().expect("golden trace has a valid header");
    let mut events = Vec::new();
    reader.read_to_end_into(&mut events).expect("golden trace decodes");
    events
}

fn profile(events: &[(u32, u64)]) -> InstructionProfiler {
    let mut p = InstructionProfiler::new(TrackerConfig::with_full());
    p.observe_batch(events);
    p
}

#[test]
fn mmap_replay_is_bit_identical_to_read_to_vec_replay() {
    let dir = std::env::temp_dir();
    for (name, events) in golden_streams() {
        let encoded = trace_codec::encode(&events, trace_codec::DEFAULT_CHUNK_EVENTS);
        let tag = name.replace('/', "-");
        let path = dir.join(format!("vp-zerocopy-{}-{tag}.vpc", std::process::id()));
        std::fs::write(&path, &encoded).unwrap();

        let mapped = TraceFile::open(&path).expect("trace file opens");
        let owned = TraceFile::from_bytes(std::fs::read(&path).unwrap());
        // A non-empty trace on Linux maps unless the fallback is forced.
        if cfg!(target_os = "linux")
            && !encoded.is_empty()
            && std::env::var_os("VP_NO_MMAP").is_none_or(|v| v != "1")
        {
            assert!(mapped.is_mapped(), "{name}: mmap path taken");
        }
        assert!(!owned.is_mapped(), "{name}: from_bytes is the owned fallback");
        assert_eq!(mapped.bytes(), owned.bytes(), "{name}: identical raw bytes");

        // End-to-end decode, chunk-by-chunk decode, and the profiles
        // built from each are all bit-identical across the two backings.
        let from_mapped = decode_all(&mapped);
        let from_owned = decode_all(&owned);
        assert_eq!(from_mapped, from_owned, "{name}: decoded events match");
        assert_eq!(from_mapped, events, "{name}: decode inverts encode");

        let mut chunked: Vec<(u32, u64)> = Vec::new();
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        let mut reader = mapped.reader().unwrap();
        while reader.next_chunk_into(&mut scratch).unwrap() {
            chunked.extend_from_slice(&scratch);
        }
        assert_eq!(chunked, from_owned, "{name}: chunked decode matches");

        let (pm, po) = (profile(&from_mapped), profile(&from_owned));
        assert_eq!(pm.metrics(), po.metrics(), "{name}: profiled metrics match");
        assert_eq!(pm.tnv_events(), po.tnv_events(), "{name}: telemetry matches");

        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn forced_fallback_decodes_identically_to_default_open() {
    // `VP_NO_MMAP=1` is checked per-open via the environment; rather than
    // mutate the process environment (racy across parallel tests), this
    // exercises the same owned-backing code path `from_bytes` shares with
    // the fallback and pins the stats equivalence.
    let events: Vec<(u32, u64)> = (0..10_000u64).map(|i| ((i % 31) as u32, i % 257)).collect();
    let encoded = trace_codec::encode(&events, 1024);
    let dir = std::env::temp_dir();
    let path = dir.join(format!("vp-zerocopy-fallback-{}.vpc", std::process::id()));
    std::fs::write(&path, &encoded).unwrap();

    let opened = TraceFile::open(&path).expect("trace file opens");
    let fallback = TraceFile::from_bytes(encoded);
    assert_eq!(decode_all(&opened), decode_all(&fallback));
    let stats_a = trace_codec::stats(opened.bytes()).unwrap();
    let stats_b = trace_codec::stats(fallback.bytes()).unwrap();
    assert_eq!(stats_a, stats_b, "stats scan agrees across backings");

    std::fs::remove_file(&path).ok();
}
