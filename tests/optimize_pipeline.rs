//! Cross-input stability oracle for the end-to-end `optimize` pipeline.
//!
//! The pipeline profiles on the *train* input and is judged on the *test*
//! input — the paper's cross-input experiment (Table V.5) turned into a
//! gate: stationary workloads must keep their specialization win on data
//! they were never profiled on, every workload must stay output-
//! equivalent, and the adversarial families (whose profiles lie) must be
//! caught by the guards, not by luck.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use value_profiling::core::{track::TrackerConfig, InstructionProfiler};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::sim::{InputSet, MachineConfig};
use value_profiling::specialize::{
    optimize_program, tracker_top_values, OptimizeOptions, ProgramOptimize,
};
use value_profiling::workloads::adversarial::{optimize_cases, OptimizeCase};
use value_profiling::workloads::{suite, DataSet};
use vp_bench::{optimize_from_outcome, OptimizeConfig, OptimizeReport, SuiteRunner};

const BUDGET: u64 = 100_000_000;

/// How many TNV values the exact pass offers the planner (mirrors the
/// driver in `vp_bench::optimize`).
const TOP_VALUE_POOL: usize = 8;

/// Suite workloads whose hot profiled load is stationary across data
/// sets. The pipeline must win on every one of these: at least one site
/// specialized, a positive dynamic-instruction reduction *on the test
/// input*, and a high guard hit rate.
const STATIONARY: &[&str] = &["m88ksim"];

fn full_suite_report() -> &'static OptimizeReport {
    static REPORT: OnceLock<OptimizeReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let ws = suite();
        let outcome = SuiteRunner::new().try_run_workloads(&ws, DataSet::Train);
        assert!(outcome.is_clean(), "train profiling pass must be fault-free");
        optimize_from_outcome(&outcome, &ws, "full", &OptimizeConfig::default()).unwrap()
    })
}

#[test]
fn every_suite_workload_stays_output_equivalent() {
    let report = full_suite_report();
    assert_eq!(report.workloads.len(), suite().len());
    for w in &report.workloads {
        assert!(
            w.result.eval.equivalent,
            "{}: train-profile-driven specialization changed test-input behaviour",
            w.name
        );
    }
    assert!(report.all_equivalent());
}

#[test]
fn stationary_workloads_win_across_inputs() {
    let report = full_suite_report();
    for &name in STATIONARY {
        let w = report
            .workloads
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("{name} missing from the optimize report"));
        let r = &w.result;
        assert!(!r.sites.is_empty(), "{name}: no site specialized");
        assert!(
            r.eval.specialized_instructions < r.eval.base_instructions,
            "{name}: no dynamic-instruction reduction on the test input \
             ({} -> {})",
            r.eval.base_instructions,
            r.eval.specialized_instructions
        );
        let (hits, misses) = (r.guard_hits(), r.guard_misses());
        assert!(hits + misses > 0, "{name}: guards never executed");
        let hit_rate = hits as f64 / (hits + misses) as f64;
        assert!(hit_rate > 0.9, "{name}: cross-input guard hit rate only {hit_rate:.3}");
    }
}

#[test]
fn non_stationary_workloads_are_rejected_with_reasons() {
    // Every load the planner passed over carries a machine-readable
    // rejection reason; nothing silently disappears.
    let report = full_suite_report();
    let mut rejected = 0usize;
    for w in &report.workloads {
        rejected += w.result.rejected.len();
        for r in &w.result.rejected {
            assert!(!r.reason.name().is_empty());
        }
    }
    assert!(rejected > 0, "the suite should reject at least one candidate");
}

/// Profiles `program` on `input` with exact ground truth.
fn exact_profile(program: &value_profiling::asm::Program, input: &InputSet) -> InstructionProfiler {
    let mut p = InstructionProfiler::new(TrackerConfig::with_full());
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(program, MachineConfig::new().input(input.clone()), BUDGET, &mut p)
        .unwrap();
    p
}

/// Runs the program-level pipeline for one adversarial case: profile on
/// its stationary train input, evaluate on its hostile test input.
fn optimize_case(case: &OptimizeCase) -> ProgramOptimize {
    let profiler = exact_profile(&case.program, &case.train);
    let top = |index: u32| {
        profiler.tracker(index).map(|t| tracker_top_values(t, TOP_VALUE_POOL)).unwrap_or_default()
    };
    let options = OptimizeOptions { budget: BUDGET, ..OptimizeOptions::default() };
    optimize_program(&case.program, &profiler.metrics(), &top, &case.test, &options).unwrap()
}

#[test]
fn adversarial_cases_stay_equivalent_and_report_their_misses() {
    // The train profile of every adversarial family is fully invariant —
    // the planner *must* take the bait — and the test input then breaks
    // the assumption. The guards have to absorb the damage (equivalent
    // output) and the miss counters have to confess it.
    for case in optimize_cases() {
        let r = optimize_case(&case);
        assert!(
            !r.sites.is_empty(),
            "{}: the stationary train profile should produce a site",
            case.name
        );
        assert!(r.eval.equivalent, "{}: guards failed to preserve behaviour", case.name);
        let (hits, misses) = (r.guard_hits(), r.guard_misses());
        assert_eq!(
            hits + misses,
            case.iterations,
            "{}: the config load runs once per iteration",
            case.name
        );
        assert!(misses > 0, "{}: a hostile input must produce guard misses", case.name);
    }
}

#[test]
fn phase_flip_misses_exactly_the_second_phase() {
    let case = optimize_cases().into_iter().find(|c| c.name == "phase-flip").unwrap();
    let r = optimize_case(&case);
    // The config flips once at the midpoint and never back: first half
    // hits, second half misses, exactly.
    assert_eq!(r.guard_hits(), case.iterations / 2, "phase-flip hits");
    assert_eq!(r.guard_misses(), case.iterations / 2, "phase-flip misses");
    assert!(r.eval.equivalent);
}

#[test]
fn tnv_churn_never_hits() {
    let case = optimize_cases().into_iter().find(|c| c.name == "tnv-churn").unwrap();
    let r = optimize_case(&case);
    // The test input replaces the config before the very first load and
    // churns from then on; the trained guard value never comes back.
    assert_eq!(r.guard_hits(), 0, "tnv-churn hits");
    assert_eq!(r.guard_misses(), case.iterations, "tnv-churn misses");
    assert!(r.eval.equivalent);
}

#[test]
fn report_and_records_are_parallelism_invariant_in_process() {
    use value_profiling::obs::telemetry::to_jsonl;
    let ws = suite();
    let cfg = OptimizeConfig::default();
    let serial = SuiteRunner::new().try_run_workloads(&ws, DataSet::Train);
    let reference = optimize_from_outcome(&serial, &ws, "full", &cfg).unwrap();
    for runner in [SuiteRunner::new().jobs(4), SuiteRunner::new().shards(3)] {
        let outcome = runner.try_run_workloads(&ws, DataSet::Train);
        let report = optimize_from_outcome(&outcome, &ws, "full", &cfg).unwrap();
        assert_eq!(reference.render_durable(), report.render_durable());
        assert_eq!(
            to_jsonl(&reference.optimize_records("optimize")),
            to_jsonl(&report.optimize_records("optimize"))
        );
    }
}

// ---------------------------------------------------------------------
// End-to-end CLI determinism: `vprof optimize` must write byte-identical
// stdout, report artifact and telemetry however the profiling pass is
// parallelized — threads, shards or worker processes.
// ---------------------------------------------------------------------

/// Builds the `vprof` binary once and returns its path (same idiom as
/// `tests/distributed_suite.rs`; the worker path spawns subprocesses, so
/// the real binary is required).
fn vprof() -> &'static Path {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let me = std::env::current_exe().expect("test binary path");
        let profile_dir = me.parent().and_then(Path::parent).expect("target profile dir");
        let mut build = Command::new(option_env!("CARGO").unwrap_or("cargo"));
        build.args(["build", "-p", "vp-cli", "--quiet"]);
        if profile_dir.file_name().is_some_and(|n| n == "release") {
            build.arg("--release");
        }
        let status = build.status().expect("cargo build -p vp-cli");
        assert!(status.success(), "building vprof failed");
        let bin = profile_dir.join("vprof");
        assert!(bin.exists(), "no vprof at {}", bin.display());
        bin
    })
}

fn run_optimize(dir: &Path, extra: &[&str]) -> String {
    let mut cmd = Command::new(vprof());
    cmd.args(["optimize", "--report", "report.txt", "--telemetry", "opt.jsonl"])
        .args(extra)
        .current_dir(dir);
    for var in ["VP_FAULTS", "VP_FAULTS_SCOPE", "VP_FAULT_SELF", "VP_TELEMETRY"] {
        cmd.env_remove(var);
    }
    let out = cmd.output().expect("spawn vprof optimize");
    assert!(
        out.status.success(),
        "vprof optimize {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

#[test]
fn cli_output_is_byte_identical_across_parallelism() {
    let base = std::env::temp_dir().join(format!("vprof-optimize-det-{}", std::process::id()));
    let variants: &[(&str, &[&str])] = &[
        ("serial", &[]),
        ("jobs4", &["--jobs", "4"]),
        ("shards2", &["--shards", "2"]),
        ("workers2", &["--workers", "2"]),
    ];
    let mut reference: Option<(String, String, String)> = None;
    for (name, extra) in variants {
        let dir = base.join(name);
        std::fs::create_dir_all(&dir).unwrap();
        let stdout = run_optimize(&dir, extra);
        let report = std::fs::read_to_string(dir.join("report.txt")).unwrap();
        let telemetry = std::fs::read_to_string(dir.join("opt.jsonl")).unwrap();
        match &reference {
            None => reference = Some((stdout, report, telemetry)),
            Some((s, r, t)) => {
                assert_eq!(s, &stdout, "{name}: stdout diverged from the serial run");
                assert_eq!(r, &report, "{name}: report artifact diverged");
                assert_eq!(t, &telemetry, "{name}: telemetry diverged");
            }
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
