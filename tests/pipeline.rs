//! Cross-crate pipeline invariants over the full benchmark suite:
//! consistency between the emulator's statistics, the instrumentation
//! layer's event counts and the profiler's metrics; determinism; and the
//! convergent profiler's accuracy contract.

use value_profiling::core::{
    compare, track::TrackerConfig, ConvergentConfig, ConvergentProfiler, InstructionProfiler,
};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::workloads::{suite, DataSet};

const BUDGET: u64 = 100_000_000;

#[test]
fn event_counts_match_profiler_and_stats() {
    for w in suite() {
        let mut profiler = InstructionProfiler::new(TrackerConfig::default());
        let run = Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut profiler)
            .unwrap();
        // Every load event became exactly one profiled value.
        let profiled: u64 = profiler.metrics().iter().map(|m| m.executions).sum();
        assert_eq!(profiled, run.counts.load_events, "{}", w.name());
        assert_eq!(run.counts.instr_events, run.counts.load_events, "{}", w.name());
        // The emulator's own statistics agree with the run outcome.
        assert_eq!(run.stats.total(), run.outcome.instructions, "{}", w.name());
        // Load class count equals load events.
        assert_eq!(
            run.stats.class_count(value_profiling::isa::OpClass::Load),
            run.counts.load_events,
            "{}",
            w.name()
        );
    }
}

#[test]
fn metric_structural_invariants_suite_wide() {
    for w in suite() {
        let profiler = {
            let mut p = InstructionProfiler::new(TrackerConfig::with_full());
            Instrumenter::new()
                .select(Selection::RegisterDefining)
                .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut p)
                .unwrap();
            p
        };
        for m in profiler.metrics() {
            let name = w.name();
            assert!(m.executions > 0, "{name}: dead tracker");
            assert!((0.0..=1.0 + 1e-9).contains(&m.inv_top1), "{name}");
            assert!(m.inv_top1 <= m.inv_topn + 1e-9, "{name}");
            assert!(m.inv_topn <= m.inv_alln.unwrap() + 1e-9, "{name}");
            assert!(m.inv_all1.unwrap() <= m.inv_alln.unwrap() + 1e-9, "{name}");
            assert!((0.0..=1.0 + 1e-9).contains(&m.lvp), "{name}");
            assert!((0.0..=1.0 + 1e-9).contains(&m.pct_zero), "{name}");
            let distinct = m.distinct.unwrap();
            assert!(distinct >= 1 && distinct <= m.executions, "{name}");
            // A single distinct value forces full invariance, and vice versa.
            if distinct == 1 {
                assert!((m.inv_all1.unwrap() - 1.0).abs() < 1e-9, "{name}");
            }
            if (m.inv_all1.unwrap() - 1.0).abs() < 1e-12 {
                assert_eq!(distinct, 1, "{name}");
            }
        }
        let agg = profiler.aggregate();
        assert!(agg.inv_top1 <= agg.inv_topn + 1e-9);
        assert!(agg.executions > 0);
    }
}

#[test]
fn profiling_is_deterministic() {
    let w = value_profiling::workloads::Workload::by_name("m88ksim").unwrap();
    let run = || {
        let mut p = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::RegisterDefining)
            .run(w.program(), w.machine_config(DataSet::Train), BUDGET, &mut p)
            .unwrap();
        p.metrics()
    };
    assert_eq!(run(), run());
}

#[test]
fn convergent_tracks_full_profile() {
    for w in suite() {
        let mut full = InstructionProfiler::new(TrackerConfig::default());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut full)
            .unwrap();
        let mut conv =
            ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut conv)
            .unwrap();

        let frac = conv.overall_profile_fraction();
        assert!(frac > 0.0 && frac <= 1.0, "{}: fraction {frac}", w.name());
        let cmp = compare(&full.metrics(), &conv.metrics());
        assert_eq!(cmp.only_one_side, 0, "{}: same instruction sets", w.name());
        assert!(
            cmp.mean_abs_inv_diff < 0.15,
            "{}: convergent drifted {:.3} from the full profile",
            w.name(),
            cmp.mean_abs_inv_diff
        );
        // Totals must match the full profile's executions exactly.
        for (f, c) in full.metrics().iter().zip(conv.stats()) {
            assert_eq!(f.executions, c.total, "{}", w.name());
            assert!(c.profiled <= c.total, "{}", w.name());
        }
        // Convention: every sampling profiler reports metrics with
        // `executions` reweighted to the TRUE execution totals (profiled
        // counts live in `stats()`), so its aggregate weights match a
        // full profile's.
        for (f, c) in full.metrics().iter().zip(conv.metrics()) {
            assert_eq!(
                f.executions,
                c.executions,
                "{}: convergent metrics must report true totals",
                w.name()
            );
        }
        assert_eq!(
            full.aggregate().executions,
            conv.aggregate().executions,
            "{}: aggregate weights must match the full profile",
            w.name()
        );
    }
}

#[test]
fn outcomes_identical_with_and_without_instrumentation() {
    for w in suite() {
        let plain = w.run(DataSet::Test, BUDGET).unwrap();
        let mut p = InstructionProfiler::new(TrackerConfig::default());
        let instrumented = Instrumenter::new()
            .select(Selection::All)
            .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut p)
            .unwrap();
        assert_eq!(plain, instrumented.outcome, "{}: observation changed behaviour", w.name());
    }
}

#[test]
fn profiler_state_usable_after_fault() {
    // A value profiler keeps the pre-fault profile when the run dies.
    use value_profiling::sim::SimError;
    let program = value_profiling::asm::assemble(
        r#"
        .text
        main:
            li r9, 10
        loop:
            addi r2, r0, 7
            addi r9, r9, -1
            bnz r9, loop
            li  r2, -8
            ldd r3, 0(r2)     # faults after the loop finished
            sys exit
        "#,
    )
    .unwrap();
    let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
    let err = Instrumenter::new()
        .select(Selection::RegisterDefining)
        .run(&program, value_profiling::sim::MachineConfig::new(), 100_000, &mut profiler)
        .unwrap_err();
    assert!(matches!(err, SimError::Mem(_)));
    let constant = profiler
        .metrics()
        .into_iter()
        .find(|m| m.top_value == Some(7))
        .expect("loop body was profiled before the fault");
    assert_eq!(constant.executions, 10);
    assert!((constant.inv_top1 - 1.0).abs() < 1e-12);
}
