//! Differential oracle: sharded profiling against serial, and the batched
//! observe path against the scalar loop.
//!
//! Two families of equivalences are checked over real workload traces and
//! adversarial synthetic streams:
//!
//! * **Entity sharding** (`pc % shards`) is *bit-identical* to a serial
//!   pass for every profiler whose state is per-instruction — the full
//!   profiler, the convergent profiler, and periodic sampling. Metrics,
//!   per-instruction stats, and telemetry event counters must all be
//!   exactly equal for shards ∈ {1, 2, 7}. Random sampling is the one
//!   exclusion: its single profiler-wide generator consumes draws in
//!   global stream order, so any split reorders the sequence.
//! * **Time sharding** (contiguous chunks) keeps every scalar and
//!   full-histogram metric exact — including the last-value chain across
//!   shard boundaries — while the TNV-derived estimates only carry an
//!   ε-bound, because each shard's table evicts independently.
//!
//! Separately, `observe_batch` must equal an `observe` loop *exactly* on
//! every layer it short-circuits: the TNV table (all three replacement
//! policies, including streams that straddle clear boundaries), the value
//! tracker, and the instruction profiler.

use value_profiling::core::{
    profile_sharded, split_by_time,
    tnv::{Policy, TnvTable},
    track::TrackerConfig,
    AdaptiveProfiler, ConvergentConfig, ConvergentProfiler, InstructionProfiler, PhaseBudget,
    SampleStrategy, SampledProfiler, ValueTracker,
};
use value_profiling::instrument::Selection;
use value_profiling::workloads::{suite, DataSet};
use vp_bench::value_stream;

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

/// Recorded traces from real workloads plus synthetic adversarial streams
/// (single hot entity, clear-boundary straddlers, value collisions).
fn streams() -> Vec<(String, Vec<(u32, u64)>)> {
    let mut out: Vec<(String, Vec<(u32, u64)>)> = Vec::new();
    for w in &suite()[..3] {
        out.push((
            format!("{}/loads", w.name()),
            value_stream(w, DataSet::Test, Selection::LoadsOnly),
        ));
    }
    out.push((
        "suite0/all".to_string(),
        value_stream(&suite()[0], DataSet::Train, Selection::RegisterDefining),
    ));
    // One entity dominating: entity sharding cannot balance this, but it
    // must still be exact.
    out.push(("hot-entity".to_string(), (0..4000u64).map(|i| (3, i % 5)).collect()));
    // Many entities with colliding values and a long invariant tail.
    out.push((
        "mixed".to_string(),
        (0..20_000u64)
            .map(|i| {
                let pc = (i * 7 % 23) as u32;
                let value = if i % 3 == 0 { 42 } else { i % 11 };
                (pc, value)
            })
            .collect(),
    ));
    out.push(("empty".to_string(), Vec::new()));
    out
}

#[test]
fn entity_sharded_full_profiler_is_bit_identical_to_serial() {
    for (name, events) in streams() {
        let mut serial = InstructionProfiler::new(TrackerConfig::with_full());
        serial.observe_batch(&events);
        for shards in SHARD_COUNTS {
            let sharded = profile_sharded(&events, shards, || {
                InstructionProfiler::new(TrackerConfig::with_full())
            });
            assert_eq!(sharded.metrics(), serial.metrics(), "{name} shards={shards}");
            assert_eq!(sharded.tnv_events(), serial.tnv_events(), "{name} shards={shards}");
        }
    }
}

#[test]
fn entity_sharded_convergent_profiler_is_bit_identical_to_serial() {
    let config = ConvergentConfig::default();
    for (name, events) in streams() {
        let mut serial = ConvergentProfiler::new(TrackerConfig::default(), config);
        for &(pc, value) in &events {
            serial.observe(pc, value);
        }
        for shards in SHARD_COUNTS {
            let sharded = profile_sharded(&events, shards, || {
                ConvergentProfiler::new(TrackerConfig::default(), config)
            });
            assert_eq!(sharded.metrics(), serial.metrics(), "{name} shards={shards}");
            assert_eq!(sharded.stats(), serial.stats(), "{name} shards={shards}");
            assert_eq!(sharded.events(), serial.events(), "{name} shards={shards}");
            assert_eq!(sharded.tnv_events(), serial.tnv_events(), "{name} shards={shards}");
            assert_eq!(
                sharded.overall_profile_fraction(),
                serial.overall_profile_fraction(),
                "{name} shards={shards}"
            );
        }
    }
}

#[test]
fn entity_sharded_adaptive_profiler_is_bit_identical_to_serial() {
    // The phase detector is strictly per-entity state (window sketch,
    // previous signature, spent budget), so entity sharding must
    // reproduce a serial adaptive run exactly — including the exact
    // PhaseStats counters, which merge across shards by addition. Runs
    // over the real/synthetic streams above *and* the adversarial
    // families, which actually fire shifts and re-arms.
    let config = ConvergentConfig::default();
    let budget = PhaseBudget { max_rearms: 8, window: 512 };
    let mut all = streams();
    all.extend(
        value_profiling::workloads::adversarial::adversarial_streams()
            .into_iter()
            .map(|(name, events)| (name.to_string(), events)),
    );
    let mut any_adapted = false;
    for (name, events) in all {
        let mut serial = AdaptiveProfiler::new(TrackerConfig::default(), config, budget);
        for &(pc, value) in &events {
            serial.observe(pc, value);
        }
        any_adapted |= serial.phase_stats().adapted();
        for shards in SHARD_COUNTS {
            let sharded = profile_sharded(&events, shards, || {
                AdaptiveProfiler::new(TrackerConfig::default(), config, budget)
            });
            assert_eq!(sharded.metrics(), serial.metrics(), "{name} shards={shards}");
            assert_eq!(sharded.stats(), serial.stats(), "{name} shards={shards}");
            assert_eq!(sharded.events(), serial.events(), "{name} shards={shards}");
            assert_eq!(sharded.tnv_events(), serial.tnv_events(), "{name} shards={shards}");
            assert_eq!(sharded.phase_stats(), serial.phase_stats(), "{name} shards={shards}");
            assert_eq!(
                sharded.overall_profile_fraction(),
                serial.overall_profile_fraction(),
                "{name} shards={shards}"
            );
        }
    }
    assert!(any_adapted, "at least one stream must exercise an actual re-arm");
}

#[test]
fn entity_sharded_periodic_sampling_is_bit_identical_to_serial() {
    // Periodic sampling keeps one countdown per instruction, so entity
    // sharding preserves it exactly. `SampleStrategy::Random` is excluded
    // by design: its profiler-global generator is consumed in stream
    // order, which no split preserves (see `vp_core::shard`).
    let strategy = SampleStrategy::Periodic { period: 13 };
    for (name, events) in streams() {
        let mut serial = SampledProfiler::new(TrackerConfig::default(), strategy);
        for &(pc, value) in &events {
            serial.observe(pc, value);
        }
        for shards in SHARD_COUNTS {
            let sharded = profile_sharded(&events, shards, || {
                SampledProfiler::new(TrackerConfig::default(), strategy)
            });
            assert_eq!(sharded.metrics(), serial.metrics(), "{name} shards={shards}");
            assert_eq!(sharded.events(), serial.events(), "{name} shards={shards}");
            assert_eq!(sharded.tnv_events(), serial.tnv_events(), "{name} shards={shards}");
        }
    }
}

/// TNV tables on different shards evict independently, so time-sharded
/// `inv_top*` may under-estimate more deeply than a serial table's. The
/// bound matches the merge oracle in `vp-core`'s proptest suite.
const TNV_EPSILON: f64 = 0.35;

#[test]
fn time_sharded_scalar_metrics_exact_and_tnv_bounded() {
    for (name, events) in streams() {
        let mut serial = InstructionProfiler::new(TrackerConfig::with_full());
        serial.observe_batch(&events);
        for shards in SHARD_COUNTS {
            let mut parts = split_by_time(&events, shards).into_iter();
            let mut merged = InstructionProfiler::new(TrackerConfig::with_full());
            merged.observe_batch(parts.next().expect("at least one part"));
            for part in parts {
                let mut shard = InstructionProfiler::new(TrackerConfig::with_full());
                shard.observe_batch(part);
                merged.merge(shard);
            }
            let (sm, xm) = (serial.metrics(), merged.metrics());
            assert_eq!(sm.len(), xm.len(), "{name} shards={shards}");
            for (s, x) in sm.iter().zip(&xm) {
                let at = format!("{name} shards={shards} pc={}", s.id);
                // Scalar counters and full-histogram metrics are exact —
                // including LVP hits across shard boundaries, which the
                // merge re-links via the boundary values.
                assert_eq!(s.id, x.id, "{at}");
                assert_eq!(s.executions, x.executions, "{at}");
                assert_eq!(s.lvp, x.lvp, "{at}");
                assert_eq!(s.pct_zero, x.pct_zero, "{at}");
                assert_eq!(s.inv_all1, x.inv_all1, "{at}");
                assert_eq!(s.inv_alln, x.inv_alln, "{at}");
                assert_eq!(s.distinct, x.distinct, "{at}");
                // TNV-derived estimates carry the documented ε-bound.
                assert!((s.inv_top1 - x.inv_top1).abs() <= TNV_EPSILON, "{at}");
                assert!((s.inv_topn - x.inv_topn).abs() <= TNV_EPSILON, "{at}");
            }
        }
    }
}

/// Value streams that exercise the TNV fast path and every way out of it:
/// top-slot runs, churn, collisions, and clear-boundary straddles.
fn value_streams() -> Vec<(String, Vec<u64>)> {
    let mut out = vec![
        ("empty".to_string(), Vec::new()),
        ("constant".to_string(), vec![7; 5000]),
        ("alternating".to_string(), (0..5000).map(|i| u64::from(i % 2 == 0)).collect()),
        ("counter".to_string(), (0..5000).collect()),
        ("runs".to_string(), (0..5000).map(|i| i / 97).collect()),
        ("skewed".to_string(), (0..5000u64).map(|i| if i % 5 == 4 { i % 23 } else { 9 }).collect()),
    ];
    for (_, events) in streams() {
        if let Some(&(pc, _)) = events.first() {
            let values =
                events.iter().filter(|&&(p, _)| p == pc).map(|&(_, v)| v).collect::<Vec<u64>>();
            out.push((format!("trace-pc{pc}"), values));
        }
    }
    out
}

#[test]
fn tnv_observe_batch_equals_observe_loop_exactly() {
    // `clear_interval: 5` forces many clear boundaries inside a single
    // batch; the fast path must take none of the boundary observations.
    let policies = [
        Policy::default(),
        Policy::LfuClear { steady: 2, clear_interval: 5 },
        Policy::Lfu,
        Policy::Lru,
    ];
    for policy in policies {
        for (name, values) in value_streams() {
            let mut scalar = TnvTable::new(8, policy);
            for &v in &values {
                scalar.observe(v);
            }
            for batch in [1usize, 3, 64, values.len().max(1)] {
                let mut batched = TnvTable::new(8, policy);
                for chunk in values.chunks(batch) {
                    batched.observe_batch(chunk);
                }
                assert_eq!(batched, scalar, "{name} policy={policy:?} batch={batch}");
            }
        }
    }
}

#[test]
fn tracker_observe_batch_equals_observe_loop_exactly() {
    for config in [TrackerConfig::default(), TrackerConfig::with_full()] {
        for (name, values) in value_streams() {
            let mut scalar = ValueTracker::new(config);
            for &v in &values {
                scalar.observe(v);
            }
            for batch in [1usize, 7, 1024] {
                let mut batched = ValueTracker::new(config);
                for chunk in values.chunks(batch) {
                    batched.observe_batch(chunk);
                }
                let at = format!("{name} batch={batch}");
                assert_eq!(batched.executions(), scalar.executions(), "{at}");
                assert_eq!(batched.lvp(), scalar.lvp(), "{at}");
                assert_eq!(batched.pct_zero(), scalar.pct_zero(), "{at}");
                assert_eq!(batched.last_value(), scalar.last_value(), "{at}");
                assert_eq!(batched.tnv(), scalar.tnv(), "{at}");
                assert_eq!(batched.inv_all(1), scalar.inv_all(1), "{at}");
                assert_eq!(batched.distinct(), scalar.distinct(), "{at}");
            }
        }
    }
}

#[test]
fn profiler_observe_batch_equals_observe_loop_exactly() {
    for (name, events) in streams() {
        let mut scalar = InstructionProfiler::new(TrackerConfig::with_full());
        for &(pc, value) in &events {
            scalar.observe(pc, value);
        }
        for batch in [1usize, 5, 333, events.len().max(1)] {
            let mut batched = InstructionProfiler::new(TrackerConfig::with_full());
            for chunk in events.chunks(batch) {
                batched.observe_batch(chunk);
            }
            assert_eq!(batched.metrics(), scalar.metrics(), "{name} batch={batch}");
            assert_eq!(batched.tnv_events(), scalar.tnv_events(), "{name} batch={batch}");
        }
    }
}
