//! End-to-end contract of `profile-suite --workers N`: worker processes
//! are crash domains, and however many there are — and however many die
//! mid-run — the suite's stdout and masked telemetry stay byte-identical
//! to the in-process `--jobs N` path.
//!
//! These tests drive the real `vprof` binary (built once per test
//! process) because the distributed path spawns `vprof worker`
//! subprocesses: there is no way to exercise SIGKILL-grade crash
//! domains in-process.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use value_profiling::obs::telemetry::{mask_volatile, parse_jsonl};
use value_profiling::obs::Json;

/// Builds the `vprof` binary once and returns its path. Tests run from
/// `target/<profile>/deps/<test-bin>`, so the CLI lands two levels up.
fn vprof() -> &'static Path {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let me = std::env::current_exe().expect("test binary path");
        let profile_dir = me.parent().and_then(Path::parent).expect("target profile dir");
        let mut build = Command::new(option_env!("CARGO").unwrap_or("cargo"));
        build.args(["build", "-p", "vp-cli", "--quiet"]);
        if profile_dir.file_name().is_some_and(|n| n == "release") {
            build.arg("--release");
        }
        let status = build.status().expect("cargo build -p vp-cli");
        assert!(status.success(), "building vprof failed");
        let bin = profile_dir.join("vprof");
        assert!(bin.exists(), "no vprof at {}", bin.display());
        bin
    })
}

struct Run {
    stdout: String,
    stderr: String,
    ok: bool,
}

/// Runs `vprof` in `dir` with a scrubbed fault-injection environment
/// plus `envs`. Telemetry paths are kept relative so stdout (which
/// echoes them) is comparable across runs in different directories.
fn run_in(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Run {
    let mut cmd = Command::new(vprof());
    cmd.args(args).current_dir(dir);
    for var in
        ["VP_FAULTS", "VP_FAULTS_SCOPE", "VP_FAULT_SELF", "VP_TELEMETRY", "VP_WORKER_GRACE_MS"]
    {
        cmd.env_remove(var);
    }
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("spawn vprof");
    Run {
        stdout: String::from_utf8(out.stdout).expect("utf8 stdout"),
        stderr: String::from_utf8(out.stderr).expect("utf8 stderr"),
        ok: out.status.success(),
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vp-distributed-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Telemetry records with run-to-run wall times masked, rendered to
/// comparable lines.
fn masked_telemetry(dir: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(dir.join("t.jsonl")).expect("telemetry written");
    parse_jsonl(&text).expect("valid telemetry").iter().map(|r| mask_volatile(r).render()).collect()
}

/// The `faults` record's counter value, 0 when absent.
fn fault_counter(dir: &Path, name: &str) -> u64 {
    let text = std::fs::read_to_string(dir.join("t.jsonl")).expect("telemetry written");
    parse_jsonl(&text)
        .expect("valid telemetry")
        .iter()
        .find(|r| r.get("kind").and_then(Json::as_str) == Some("faults"))
        .and_then(|r| r.get("events")?.get(name)?.as_u64())
        .unwrap_or(0)
}

/// `vprof stats` over a masked copy of the telemetry: volatile fields
/// render as fixed placeholders, so the summary itself is byte-stable.
fn masked_stats(dir: &Path) -> String {
    let masked = masked_telemetry(dir).join("\n") + "\n";
    std::fs::write(dir.join("masked.jsonl"), masked).unwrap();
    let run = run_in(dir, &["stats", "masked.jsonl"], &[]);
    assert!(run.ok, "stats failed: {}", run.stderr);
    run.stdout
}

#[test]
fn workers_match_in_process_bit_exact() {
    for n in ["1", "2", "4"] {
        let threads = fresh_dir(&format!("jobs{n}"));
        let procs = fresh_dir(&format!("workers{n}"));
        let reference =
            run_in(&threads, &["profile-suite", "--jobs", n, "--telemetry", "t.jsonl"], &[]);
        let distributed =
            run_in(&procs, &["profile-suite", "--workers", n, "--telemetry", "t.jsonl"], &[]);
        assert!(reference.ok && distributed.ok, "{}", distributed.stderr);
        assert_eq!(reference.stdout, distributed.stdout, "stdout differs at parallelism {n}");
        assert_eq!(
            masked_telemetry(&threads),
            masked_telemetry(&procs),
            "telemetry differs at parallelism {n}"
        );
        assert_eq!(masked_stats(&threads), masked_stats(&procs), "stats differ at {n}");
    }
}

#[test]
fn killed_worker_recovers_in_run_with_exact_counters() {
    let clean = fresh_dir("kill-clean");
    let faulty = fresh_dir("kill-faulty");
    let reference =
        run_in(&clean, &["profile-suite", "--workers", "2", "--telemetry", "t.jsonl"], &[]);
    // Worker 0's second result frame is torn mid-write by a SIGABRT;
    // the parent buries the worker, respawns a replacement, and retries
    // the lost workload. The suite still comes out clean.
    let survived = run_in(
        &faulty,
        &["profile-suite", "--workers", "2", "--retries", "1", "--telemetry", "t.jsonl"],
        &[("VP_FAULTS", "kill:worker/frame@2"), ("VP_FAULTS_SCOPE", "worker:0")],
    );
    assert!(reference.ok && survived.ok, "{}", survived.stderr);
    assert!(!survived.stdout.contains("failed"), "unexpected failure table:\n{}", survived.stdout);

    // Stdout matches the clean run except the record count on the
    // telemetry line (the faulty run adds one `faults` record).
    let strip =
        |s: &str| s.lines().filter(|l| !l.starts_with("telemetry:")).collect::<Vec<_>>().join("\n");
    assert_eq!(strip(&reference.stdout), strip(&survived.stdout));

    // Exactly one death, exactly one replacement, and the initial two
    // spawns plus that replacement — deterministic because the fault is
    // scoped to worker 0 and fires exactly once.
    assert_eq!(fault_counter(&faulty, "worker_deaths"), 1);
    assert_eq!(fault_counter(&faulty, "worker_restarts"), 1);
    assert_eq!(fault_counter(&faulty, "worker_spawns"), 3);
    assert_eq!(fault_counter(&faulty, "workload_retries"), 1);
    assert_eq!(fault_counter(&faulty, "workload_panics"), 0);
    assert_eq!(fault_counter(&faulty, "workload_quarantined"), 0);

    // The workload records themselves are untouched by the crash.
    let workload_lines = |dir: &Path| {
        masked_telemetry(dir)
            .into_iter()
            .filter(|l| l.contains("\"kind\":\"workload\""))
            .collect::<Vec<_>>()
    };
    assert_eq!(workload_lines(&clean), workload_lines(&faulty));
}

#[test]
fn killed_worker_quarantines_then_resume_is_byte_identical() {
    let clean = fresh_dir("resume-clean");
    let broken = fresh_dir("resume-broken");
    let reference = run_in(
        &clean,
        &[
            "profile-suite",
            "--workers",
            "2",
            "--retries",
            "0",
            "--checkpoint",
            "c.jsonl",
            "--telemetry",
            "t.jsonl",
        ],
        &[],
    );
    assert!(reference.ok, "{}", reference.stderr);

    // No retry budget: the torn frame classifies as a retryable worker
    // death, but with zero retries the workload quarantines — with the
    // dead worker's index and exit status in the table — instead of the
    // run aborting on "corrupt" input.
    let interrupted = run_in(
        &broken,
        &[
            "profile-suite",
            "--workers",
            "2",
            "--retries",
            "0",
            "--checkpoint",
            "c.jsonl",
            "--telemetry",
            "t.jsonl",
        ],
        &[("VP_FAULTS", "kill:worker/frame@2"), ("VP_FAULTS_SCOPE", "worker:0")],
    );
    assert!(interrupted.ok, "{}", interrupted.stderr);
    assert!(
        interrupted.stdout.contains("worker-death(w0:signal 6)"),
        "missing worker-death quarantine:\n{}",
        interrupted.stdout
    );
    assert_eq!(fault_counter(&broken, "worker_deaths"), 1);
    assert_eq!(fault_counter(&broken, "workload_quarantined"), 1);

    // `vprof stats` renders the same crash-domain cell from telemetry.
    let stats = run_in(&broken, &["stats", "t.jsonl"], &[]);
    assert!(stats.ok && stats.stdout.contains("worker-death(w0:signal 6)"), "{}", stats.stdout);

    // Resuming from the checkpoint (faults disarmed, as after an
    // operator fixed the box) re-profiles only the quarantined workload
    // and produces stdout and telemetry byte-identical to the
    // uninterrupted run's.
    let resumed = run_in(
        &broken,
        &[
            "profile-suite",
            "--workers",
            "2",
            "--retries",
            "0",
            "--checkpoint",
            "c.jsonl",
            "--resume",
            "--telemetry",
            "t.jsonl",
        ],
        &[],
    );
    assert!(resumed.ok, "{}", resumed.stderr);
    assert_eq!(reference.stdout, resumed.stdout);
    assert_eq!(masked_telemetry(&clean), masked_telemetry(&broken));
    assert!(resumed.stderr.contains("workload(s) restored"), "{}", resumed.stderr);
}

#[test]
fn hung_workload_times_out_retries_then_quarantines() {
    // Layer 1: a cooperative hang inside the workload trips the
    // *worker's own* deadline, comes back as a timeout failure frame,
    // and retries cleanly — the worker process survives.
    let retried = fresh_dir("hang-retried");
    let run = run_in(
        &retried,
        &[
            "profile-suite",
            "--workers",
            "1",
            "--retries",
            "1",
            "--deadline-ms",
            "2000",
            "--telemetry",
            "t.jsonl",
        ],
        &[("VP_FAULTS", "hang:workload/gcc@1x1")],
    );
    assert!(run.ok, "{}", run.stderr);
    assert!(!run.stdout.contains("failed"), "{}", run.stdout);
    assert_eq!(fault_counter(&retried, "workload_timeouts"), 1);
    assert_eq!(fault_counter(&retried, "workload_retries"), 1);
    assert_eq!(fault_counter(&retried, "worker_deaths"), 0);

    // Without retry budget the same hang quarantines as a timeout with
    // the deadline's own message — byte-identical to the in-process
    // path's classification.
    let quarantined = fresh_dir("hang-quarantined");
    let run = run_in(
        &quarantined,
        &[
            "profile-suite",
            "--workers",
            "1",
            "--retries",
            "0",
            "--deadline-ms",
            "2000",
            "--telemetry",
            "t.jsonl",
        ],
        &[("VP_FAULTS", "hang:workload/gcc")],
    );
    assert!(run.ok, "{}", run.stderr);
    assert!(run.stdout.contains("deadline exceeded"), "{}", run.stdout);
    assert_eq!(fault_counter(&quarantined, "workload_timeouts"), 1);
    assert_eq!(fault_counter(&quarantined, "workload_quarantined"), 1);
    assert_eq!(fault_counter(&quarantined, "worker_deaths"), 0);
}

#[test]
fn unresponsive_worker_is_reaped_with_sigkill() {
    // Layer 2: the worker wedges *outside* the cooperative machinery
    // (here: mid frame write), so its own deadline never fires. The
    // parent's reaper SIGKILLs it after the grace period and the
    // workload retries on a replacement — this is the literal kill -9.
    let dir = fresh_dir("reaped");
    let run = run_in(
        &dir,
        &[
            "profile-suite",
            "--workers",
            "1",
            "--retries",
            "1",
            "--deadline-ms",
            "2000",
            "--telemetry",
            "t.jsonl",
        ],
        &[
            ("VP_FAULTS", "hang:worker/frame@2"),
            ("VP_FAULTS_SCOPE", "worker:0"),
            ("VP_WORKER_GRACE_MS", "700"),
        ],
    );
    assert!(run.ok, "{}", run.stderr);
    assert!(!run.stdout.contains("failed"), "{}", run.stdout);
    assert_eq!(fault_counter(&dir, "worker_deaths"), 1);
    assert_eq!(fault_counter(&dir, "worker_restarts"), 1);
    assert_eq!(fault_counter(&dir, "worker_spawns"), 2);
    assert_eq!(fault_counter(&dir, "workload_retries"), 1);
}

#[test]
fn governed_output_is_independent_of_worker_count() {
    let threads = fresh_dir("gov-jobs");
    let procs = fresh_dir("gov-workers");
    let flags = ["--mem-budget-mb", "64", "--deadline-ms", "60000", "--telemetry", "t.jsonl"];
    let mut ref_args = vec!["profile-suite", "--jobs", "2"];
    ref_args.extend_from_slice(&flags);
    let mut dist_args = vec!["profile-suite", "--workers", "2"];
    dist_args.extend_from_slice(&flags);
    let reference = run_in(&threads, &ref_args, &[]);
    let distributed = run_in(&procs, &dist_args, &[]);
    assert!(reference.ok && distributed.ok, "{}", distributed.stderr);
    assert!(reference.stdout.contains("governor"), "{}", reference.stdout);
    assert_eq!(reference.stdout, distributed.stdout);
    assert_eq!(masked_telemetry(&threads), masked_telemetry(&procs));
}
