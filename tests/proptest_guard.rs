//! Property test: the guard chain is *total* protection.
//!
//! For arbitrary forced candidate values — right, stale or plain wrong —
//! and arbitrary input streams rewriting the configuration at arbitrary
//! points, the guarded specialized program must stay observably
//! equivalent to the original, single- and multi-way alike, and the
//! guard hit/miss accounting must be exact: one hit or one miss per
//! dynamic execution of the site, hits exactly when the loaded value is
//! in the guarded set.

use proptest::prelude::*;
use value_profiling::sim::InputSet;
use value_profiling::specialize::{
    demo, evaluate_guarded, specialize_all_sites, specialize_multi_all, Candidate, MultiCandidate,
};

const BUDGET: u64 = 10_000_000;

/// The demo kernel's built-in initial configuration value.
const BASE_CONFIG: u64 = 0x1234;

/// Wraps a directive stream (0 = keep the current configuration, any
/// other value replaces it) into the demo kernel's input format.
fn demo_input(directives: &[u64]) -> InputSet {
    let mut values = vec![directives.len() as u64];
    values.extend_from_slice(directives);
    InputSet::named("prop", values)
}

/// Replays the configuration evolution and counts loads whose value is in
/// the guarded set — the ground truth for the hit counter.
fn expected_hits(directives: &[u64], guarded: &[u64]) -> u64 {
    let mut config = BASE_CONFIG;
    let mut hits = 0;
    for &d in directives {
        if d != 0 {
            config = d;
        }
        if guarded.contains(&config) {
            hits += 1;
        }
    }
    hits
}

/// A directive stream biased toward "keep" so the load stays interesting,
/// with occasional rewrites to the base value (stale-looking), a near
/// neighbour, or anything at all.
fn arb_directives() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            5 => Just(0u64),
            1 => Just(BASE_CONFIG),
            1 => (1u64..=64).prop_map(|d| BASE_CONFIG + d),
            1 => any::<u64>().prop_map(|v| v | 1),
        ],
        1..160,
    )
}

/// An arbitrary guard value: sometimes the right one, sometimes close,
/// sometimes anything.
fn arb_guard_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        1 => Just(BASE_CONFIG),
        1 => (1u64..=64).prop_map(|d| BASE_CONFIG + d),
        2 => any::<u64>(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-way: whatever value the guard tests and whatever the input
    /// does to the configuration, behaviour is preserved and every
    /// dynamic execution is accounted as exactly one hit or one miss.
    #[test]
    fn single_way_guard_is_total(
        directives in arb_directives(),
        guard_value in arb_guard_value(),
    ) {
        let program = demo::program();
        let load_index = demo::config_load_index(&program);
        let candidate = Candidate {
            load_index,
            value: guard_value,
            invariance: 1.0,
            executions: directives.len() as u64,
        };
        let (specialized, sites) =
            specialize_all_sites(&program, std::slice::from_ref(&candidate)).expect("specialize");
        let input = demo_input(&directives);
        let report =
            evaluate_guarded(&program, &specialized, &sites, &input, BUDGET).expect("evaluate");
        prop_assert!(report.speedup.equivalent, "guarded output diverged");
        let g = &report.guards[0];
        prop_assert_eq!(g.hits + g.misses, directives.len() as u64, "one guard event per load");
        prop_assert_eq!(g.hits, expected_hits(&directives, &[guard_value]));
    }

    /// Multi-way: a chain of up to three arbitrary guard values behaves
    /// the same — equivalent output, exact accounting, a hit whenever the
    /// loaded value is anywhere in the chain.
    #[test]
    fn multi_way_guard_is_total(
        directives in arb_directives(),
        values in prop::collection::vec(arb_guard_value(), 1..=3),
    ) {
        let mut guarded = Vec::new();
        for v in values {
            if !guarded.contains(&v) {
                guarded.push(v);
            }
        }
        let program = demo::program();
        let load_index = demo::config_load_index(&program);
        let candidate = MultiCandidate {
            load_index,
            values: guarded.clone(),
            invariance: 1.0,
            executions: directives.len() as u64,
        };
        let (specialized, sites) =
            specialize_multi_all(&program, std::slice::from_ref(&candidate)).expect("specialize");
        let input = demo_input(&directives);
        let report =
            evaluate_guarded(&program, &specialized, &sites, &input, BUDGET).expect("evaluate");
        prop_assert!(report.speedup.equivalent, "guarded output diverged");
        let g = &report.guards[0];
        prop_assert_eq!(g.hits + g.misses, directives.len() as u64, "one guard event per load");
        prop_assert_eq!(g.hits, expected_hits(&directives, &guarded));
    }
}
