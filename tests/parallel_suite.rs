//! Determinism contract of the parallel suite runner: fanning the suite
//! out over worker threads must produce byte-for-byte the same
//! per-workload profiles and reports as a serial run, on both data sets
//! and in every profiling mode.

use value_profiling::core::{ConvergentConfig, SampleStrategy};
use value_profiling::workloads::DataSet;
use vp_bench::{ProfileMode, SuiteRunner};

fn assert_identical(a: &vp_bench::SuiteProfile, b: &vp_bench::SuiteProfile) {
    assert_eq!(a.workloads.len(), b.workloads.len());
    for (s, p) in a.workloads.iter().zip(&b.workloads) {
        assert_eq!(s.name, p.name, "workload order is canonical");
        assert_eq!(s.metrics, p.metrics, "{}: per-entity metrics differ", s.name);
        assert_eq!(s.instructions, p.instructions, "{}", s.name);
        assert!(
            (s.profile_fraction - p.profile_fraction).abs() < 1e-15,
            "{}: profile fraction differs",
            s.name
        );
    }
    assert_eq!(a.render("x"), b.render("x"), "rendered reports differ");
}

#[test]
fn full_mode_jobs4_matches_serial() {
    for ds in [DataSet::Test, DataSet::Train] {
        let serial = SuiteRunner::new().jobs(1).run(ds);
        let parallel = SuiteRunner::new().jobs(4).run(ds);
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn convergent_and_sampled_modes_are_parallel_deterministic() {
    for mode in [
        ProfileMode::Convergent(ConvergentConfig::default()),
        ProfileMode::Sampled(SampleStrategy::Random { period: 10 }),
    ] {
        let runner = |jobs| {
            SuiteRunner::new()
                .tracker(value_profiling::core::track::TrackerConfig::default())
                .mode(mode)
                .jobs(jobs)
                .run(DataSet::Test)
        };
        assert_identical(&runner(1), &runner(4));
    }
}

#[test]
fn zero_jobs_uses_available_parallelism_and_still_matches() {
    let serial = SuiteRunner::new().jobs(1).run(DataSet::Test);
    let auto = SuiteRunner::new().jobs(0).run(DataSet::Test);
    assert_identical(&serial, &auto);
}

#[test]
fn telemetry_event_counts_identical_across_jobs() {
    use std::sync::Arc;
    use value_profiling::obs::telemetry::mask_volatile;
    use value_profiling::obs::{Json, MemRecorder};

    let run = |jobs| {
        let rec = Arc::new(MemRecorder::new());
        let profile = SuiteRunner::new().jobs(jobs).recorder(rec.clone()).run(DataSet::Test);
        (profile, rec)
    };
    let (serial, rec1) = run(1);
    let (parallel, rec4) = run(4);

    // The per-workload event counters are plain u64s flushed at workload
    // boundaries, so they are byte-identical however the suite is fanned
    // out.
    for (s, p) in serial.workloads.iter().zip(&parallel.workloads) {
        assert_eq!(s.events.to_json().render(), p.events.to_json().render(), "{}", s.name);
    }
    // So are the recorder's counter totals (histograms hold wall times and
    // are excluded by construction).
    assert_eq!(rec1.snapshot().to_json().render(), rec4.snapshot().to_json().render());

    // And the full telemetry record sets agree byte-for-byte once volatile
    // wall-time fields are masked. The declared jobs value is part of the
    // record, so both sides label themselves identically here.
    let masked = |profile| {
        let records = vp_bench::suite_records("t", DataSet::Test, 0, "full-loads", profile, None);
        records.iter().map(|r: &Json| mask_volatile(r).render()).collect::<Vec<String>>()
    };
    assert_eq!(masked(&serial), masked(&parallel));
}
