//! Property tests pinning the adversarial workload families to their
//! advertised pathologies, so a refactor cannot silently turn them into
//! easy inputs (which would let the adaptive ε-oracle pass vacuously).
//!
//! Checked per family: the oscillation period is *exact*, the power-law
//! tail has the configured index, the churn stream forces a minimum
//! TNV-eviction rate, and the diurnal stream really changes its dominant
//! value once per epoch while keeping noise a bounded minority.

use std::collections::HashMap;

use value_profiling::core::{track::TrackerConfig, ValueTracker};
use value_profiling::workloads::adversarial::{
    adversarial_streams, diurnal, heavy_tailed, phase_oscillating, tnv_churn,
};

#[test]
fn oscillation_period_is_exact_per_entity() {
    let (entities, period, values) = (3u32, 512u64, [7u64, 9, 11]);
    let stream = phase_oscillating(entities, period, &values, 18_432);
    // Split per entity and measure the distance between consecutive value
    // changes: every gap must be exactly `period`, and the first change
    // must land exactly at `period` — no jitter, no drift.
    for pc in 0..entities {
        let vals: Vec<u64> = stream.iter().filter(|e| e.0 == pc).map(|e| e.1).collect();
        assert_eq!(vals.len() as u64, 18_432 / u64::from(entities));
        let change_points: Vec<u64> =
            (1..vals.len()).filter(|&i| vals[i] != vals[i - 1]).map(|i| i as u64).collect();
        assert!(!change_points.is_empty(), "pc={pc} never oscillated");
        assert_eq!(change_points[0], period, "pc={pc}: first flip off-period");
        for w in change_points.windows(2) {
            assert_eq!(w[1] - w[0], period, "pc={pc}: oscillation drifted");
        }
        // And the phase sequence cycles through the value list in order.
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(v, values[(i as u64 / period) as usize % values.len()], "pc={pc} i={i}");
        }
    }
}

#[test]
fn heavy_tail_has_the_configured_index() {
    let alpha = 1.2f64;
    let stream = heavy_tailed(1, 1_024, alpha, 400_000, 0xFEED);
    let mut freq: HashMap<u64, u64> = HashMap::new();
    for &(_, v) in &stream {
        *freq.entry(v).or_default() += 1;
    }
    // Frequencies must be rank-ordered at the head (the generator emits
    // the rank itself as the value).
    let f = |r: u64| freq.get(&r).copied().unwrap_or(0) as f64;
    for r in 1..8 {
        assert!(f(r) >= f(r + 1), "rank {r} out of order: {} < {}", f(r), f(r + 1));
    }
    // For a power law, freq(r) / freq(2r) ≈ 2^alpha. Estimate the tail
    // index from several rank pairs and demand it matches within 15% —
    // loose enough for sampling noise, tight enough that a uniform
    // (alpha = 0) or near-degenerate distribution cannot sneak through.
    for r in [1u64, 2, 4, 8] {
        let est = (f(r) / f(2 * r)).log2() / (2f64).log2();
        assert!(
            (est - alpha).abs() < 0.15 * alpha + 0.1,
            "tail index at rank {r}: estimated {est:.3}, configured {alpha}"
        );
    }
    // A genuine tail: plenty of distinct values beyond any TNV table.
    assert!(freq.len() > 256, "only {} distinct values", freq.len());
}

#[test]
fn tnv_churn_forces_a_minimum_eviction_rate() {
    let stream = tnv_churn(24, 500, 5, 60_000);
    // More live values than the default 8-entry table.
    let distinct: std::collections::HashSet<u64> = stream.iter().map(|e| e.1).collect();
    assert_eq!(distinct.len(), 24);
    let mut tracker = ValueTracker::new(TrackerConfig::default());
    for &(_, v) in &stream {
        tracker.observe(v);
    }
    let ev = tracker.tnv_events();
    // Rotating dominance must displace residents continuously. The exact
    // rate depends on the replacement policy; the floor below (one
    // eviction per 2 000 observations) is ~40x under the observed rate,
    // catching only wholesale regressions of the family.
    let rate = ev.evictions as f64 / stream.len() as f64;
    assert!(rate > 0.0005, "eviction rate collapsed: {rate:.6} ({ev:?})");
    // Dominance really rotates: each block's majority value is the
    // rotation's pick.
    for (b, block) in stream.chunks(500).enumerate().take(30) {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &(_, v) in block {
            *counts.entry(v).or_default() += 1;
        }
        let top = counts.iter().max_by_key(|&(v, c)| (*c, std::cmp::Reverse(*v))).unwrap();
        assert_eq!(*top.0, (b as u64 % 24) + 1_000, "block {b} dominated by {top:?}");
        assert!(*top.1 >= 400, "block {b}: dominance too weak ({top:?})");
    }
}

#[test]
fn diurnal_drifts_once_per_epoch_with_bounded_noise() {
    let (entities, epoch, epochs, noise_pct) = (2u32, 2_048u64, 5u64, 10u64);
    let stream = diurnal(entities, epoch, epochs, noise_pct, 0xC0FFEE);
    assert_eq!(stream.len() as u64, u64::from(entities) * epoch * epochs);
    for pc in 0..entities {
        let vals: Vec<u64> = stream.iter().filter(|e| e.0 == pc).map(|e| e.1).collect();
        let mut dominants = Vec::new();
        for (e, chunk) in vals.chunks(epoch as usize).enumerate() {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            for &v in chunk {
                *counts.entry(v).or_default() += 1;
            }
            let (&top, &n) = counts.iter().max_by_key(|&(_, c)| *c).unwrap();
            let share = n as f64 / chunk.len() as f64;
            // The dominant share is the complement of the noise rate,
            // within sampling slack.
            let expect = 1.0 - noise_pct as f64 / 100.0;
            assert!(
                (share - expect).abs() < 0.05,
                "pc={pc} epoch {e}: dominant share {share:.3} vs {expect:.3}"
            );
            dominants.push(top);
        }
        // One fresh dominant value per epoch — the long-run shift.
        assert_eq!(dominants.len() as u64, epochs, "pc={pc}");
        let unique: std::collections::HashSet<u64> = dominants.iter().copied().collect();
        assert_eq!(unique.len() as u64, epochs, "pc={pc}: dominants repeat: {dominants:?}");
        assert_eq!(dominants, (0..epochs).map(|e| 10_000 + e).collect::<Vec<u64>>(), "pc={pc}");
    }
}

#[test]
fn default_streams_are_deterministic_and_nonempty() {
    let a = adversarial_streams();
    let b = adversarial_streams();
    assert_eq!(a.len(), 4, "four families");
    for ((name_a, sa), (name_b, sb)) in a.iter().zip(&b) {
        assert_eq!(name_a, name_b);
        assert_eq!(sa, sb, "{name_a} must reproduce bit-identically");
        assert!(sa.len() >= 10_000, "{name_a} too short to exercise anything");
    }
}
