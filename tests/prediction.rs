//! Predictor-harness invariants over real workload value streams.

use value_profiling::core::{track::TrackerConfig, InstructionProfiler};
use value_profiling::instrument::{Analysis, Instrumenter, Selection};
use value_profiling::predict::{
    evaluate, FilteredPredictor, HybridPredictor, LastValuePredictor, Predictor, StridePredictor,
    TwoLevelPredictor,
};
use value_profiling::sim::{InstrEvent, Machine};
use value_profiling::workloads::{suite, DataSet, Workload};

fn stream_of(w: &Workload) -> Vec<(u32, u64)> {
    struct Collector(Vec<(u32, u64)>);
    impl Analysis for Collector {
        fn after_instr(&mut self, _m: &Machine, ev: &InstrEvent) {
            if let Some((_, v)) = ev.dest {
                self.0.push((ev.index, v));
            }
        }
    }
    let mut c = Collector(Vec::new());
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(w.program(), w.machine_config(DataSet::Test), 100_000_000, &mut c)
        .unwrap();
    c.0
}

#[test]
fn predictor_stats_account_for_every_event() {
    for w in suite() {
        let stream = stream_of(&w);
        for p in [
            &mut LastValuePredictor::new(256) as &mut dyn Predictor,
            &mut StridePredictor::new(256),
            &mut TwoLevelPredictor::new(),
            &mut HybridPredictor::new(LastValuePredictor::new(256), StridePredictor::new(256)),
        ] {
            let s = evaluate(p, stream.iter().copied());
            assert_eq!(s.total() as usize, stream.len(), "{} / {}", w.name(), p.name());
            assert!(s.hit_rate() <= 1.0 && s.precision() <= 1.0 && s.coverage() <= 1.0);
        }
    }
}

#[test]
fn lvp_hit_rate_matches_profiled_lvp_metric() {
    // A last-value predictor with ample table space and no confidence
    // gating differs from the LVP metric only through its 2-bit counters;
    // its hit rate must sit close to (and never wildly above) the
    // profiled LVP.
    for w in suite() {
        let stream = stream_of(&w);
        let mut profiler = InstructionProfiler::new(TrackerConfig::default());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), 100_000_000, &mut profiler)
            .unwrap();
        let lvp_metric = profiler.aggregate().lvp;
        let s = evaluate(&mut LastValuePredictor::new(4096), stream.iter().copied());
        assert!(
            s.hit_rate() <= lvp_metric + 0.02,
            "{}: predictor {:.3} vs metric {:.3}",
            w.name(),
            s.hit_rate(),
            lvp_metric
        );
        assert!(
            s.hit_rate() >= lvp_metric - 0.25,
            "{}: confidence gating cost too much ({:.3} vs {:.3})",
            w.name(),
            s.hit_rate(),
            lvp_metric
        );
    }
}

#[test]
fn filtering_never_increases_mispredictions() {
    for w in suite() {
        let stream = stream_of(&w);
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Train), 100_000_000, &mut profiler)
            .unwrap();
        let unfiltered = evaluate(&mut LastValuePredictor::new(1024), stream.iter().copied());
        let filtered = evaluate(
            &mut FilteredPredictor::from_profile(
                LastValuePredictor::new(1024),
                &profiler.metrics(),
                0.5,
            ),
            stream.iter().copied(),
        );
        assert!(
            filtered.mispredictions <= unfiltered.mispredictions,
            "{}: filtering must not add mispredictions",
            w.name()
        );
        assert!(filtered.hits <= unfiltered.hits, "{}", w.name());
    }
}
