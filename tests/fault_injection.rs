//! Fault-injection contract of the robust suite runner: injected panics
//! quarantine a workload without losing the rest of the suite, the retry
//! counters are exact, an interrupted checkpointed run resumes to output
//! identical to an uninterrupted one, and corruption of persisted
//! profiles is detected at load. Everything is driven by deterministic
//! [`FaultPlan`]s — no timing, no signals, no flakes.

use std::path::PathBuf;
use std::sync::Arc;

use value_profiling::core::{FaultPlan, Integrity, IntegrityMode, LoadProfileError};
use value_profiling::obs::telemetry::mask_volatile;
use value_profiling::obs::{CounterId, Json, MemRecorder};
use value_profiling::workloads::{suite, DataSet, Workload};
use vp_bench::{fault_records, suite_records, Checkpoint, RetryPolicy, SuiteOutcome, SuiteRunner};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("vp_fault_injection_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn no_backoff(max_retries: u64) -> RetryPolicy {
    RetryPolicy { max_retries, backoff_base_ms: 0, backoff_cap_ms: 0 }
}

/// Telemetry records of an outcome with run-to-run volatile fields
/// masked, rendered to strings for byte comparison.
fn masked_records(outcome: &SuiteOutcome, rec: &MemRecorder) -> Vec<String> {
    let mut records =
        suite_records("fault-test", DataSet::Test, 1, "full-loads", &outcome.profile, Some(rec));
    records.extend(fault_records("fault-test", outcome));
    records.iter().map(|r: &Json| mask_volatile(r).render()).collect()
}

#[test]
fn injected_panic_quarantines_one_workload_and_keeps_the_rest() {
    let workloads = &suite()[..4]; // compress, gcc, li, ijpeg
    let clean = SuiteRunner::new().run_workloads(workloads, DataSet::Test);
    let plan = Arc::new(FaultPlan::parse("panic:workload/gcc").unwrap());
    let outcome = SuiteRunner::new()
        .faults(plan)
        .retry(no_backoff(1))
        .try_run_workloads(workloads, DataSet::Test);

    // Every other workload completed with metrics identical to a clean run.
    assert_eq!(outcome.profile.workloads.len(), 3);
    let surviving: Vec<&str> = outcome.profile.workloads.iter().map(|w| w.name).collect();
    assert_eq!(surviving, ["compress", "li", "ijpeg"], "canonical order, gcc quarantined");
    for w in &outcome.profile.workloads {
        let reference = clean.workloads.iter().find(|c| c.name == w.name).unwrap();
        assert_eq!(w.metrics, reference.metrics, "{}", w.name);
        assert_eq!(w.instructions, reference.instructions, "{}", w.name);
    }

    // The failure is fully described: attempts, message, table, counters.
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].name, "gcc");
    assert_eq!(outcome.failures[0].attempts, 2, "first try + one retry");
    assert!(outcome.failures[0].error.contains("fault injected: workload/gcc"));
    assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 2);
    assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 1);
    assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 1);
    let table = outcome.render_failures();
    assert!(table.starts_with("failed"), "{table}");
    assert!(table.contains("gcc") && table.contains("fault injected"), "{table}");

    // The telemetry carries one faults record and one failure record.
    let records = fault_records("fault-test", &outcome);
    assert_eq!(records.len(), 2);
    assert_eq!(records[0].get("kind").unwrap().as_str(), Some("faults"));
    assert_eq!(records[1].get("kind").unwrap().as_str(), Some("failure"));
    assert_eq!(records[1].get("name").unwrap().as_str(), Some("gcc"));
    assert_eq!(records[1].get("attempts").unwrap().as_u64(), Some(2));
    assert_eq!(records[1].get("failure_kind").unwrap().as_str(), Some("panic"));
}

#[test]
fn retry_counters_are_exact_across_multiple_transient_faults() {
    let workloads = &suite()[..3]; // compress, gcc, li
    let clean = SuiteRunner::new().run_workloads(workloads, DataSet::Test);
    // compress panics on its first two attempts, li on its first one.
    let plan =
        Arc::new(FaultPlan::parse("panic:workload/compress@1x2,panic:workload/li@1x1").unwrap());
    let outcome = SuiteRunner::new()
        .faults(plan)
        .retry(no_backoff(3))
        .try_run_workloads(workloads, DataSet::Test);

    assert!(outcome.is_clean(), "{:?}", outcome.failures);
    assert_eq!(outcome.profile.workloads.len(), 3);
    for (a, b) in outcome.profile.workloads.iter().zip(&clean.workloads) {
        assert_eq!(a.name, b.name, "canonical order restored after retries");
        assert_eq!(a.metrics, b.metrics, "{}", a.name);
    }
    // Round 1: compress + li panic (2). Round 2 retries both (2): compress
    // panics again (1), li succeeds. Round 3 retries compress (1), which
    // succeeds. Nothing is quarantined.
    assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 3);
    assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 3);
    assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 0);
    assert_eq!(outcome.render_failures(), "");
}

#[test]
fn interrupted_checkpoint_resume_matches_uninterrupted_run() {
    let workloads: &[Workload] = &suite()[..5]; // compress, gcc, li, ijpeg, go
    let path = tmp("kill_resume.jsonl");

    // Reference: the uninterrupted run, telemetry and all.
    let reference_rec = Arc::new(MemRecorder::new());
    let reference = SuiteRunner::new()
        .recorder(reference_rec.clone())
        .try_run_workloads(workloads, DataSet::Test);
    assert!(reference.is_clean());

    // Interrupted run: dies after completing 3 of 5 workloads, mid-append
    // of a fourth record (the torn tail a SIGKILL during write leaves).
    let checkpoint = Arc::new(Checkpoint::create(&path).unwrap());
    let partial =
        SuiteRunner::new().checkpoint(checkpoint).try_run_workloads(&workloads[..3], DataSet::Test);
    assert!(partial.is_clean());
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(br#"{"schema":1,"kind":"checkpoint","name":"ijp"#).unwrap();
    }

    // Resume: the 3 complete records are restored, the torn tail dropped.
    let (resumed_checkpoint, summary) = Checkpoint::resume(&path).unwrap();
    assert_eq!(summary.restored, 3);
    assert!(summary.dropped_tail.is_some(), "torn tail reported");
    let resumed_rec = Arc::new(MemRecorder::new());
    let resumed = SuiteRunner::new()
        .recorder(resumed_rec.clone())
        .checkpoint(Arc::new(resumed_checkpoint))
        .try_run_workloads(workloads, DataSet::Test);
    assert!(resumed.is_clean());

    // The resumed run's output is identical to the uninterrupted one:
    // bit-exact metrics, byte-identical rendered table, byte-identical
    // telemetry once volatile wall times are masked, and identical
    // recorder counter totals.
    assert_eq!(resumed.profile.workloads.len(), reference.profile.workloads.len());
    for (a, b) in resumed.profile.workloads.iter().zip(&reference.profile.workloads) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.metrics, b.metrics, "{}: restored metrics drifted", a.name);
        assert_eq!(a.instructions, b.instructions, "{}", a.name);
        assert_eq!(a.events, b.events, "{}: restored events drifted", a.name);
        assert_eq!(
            a.profile_fraction.to_bits(),
            b.profile_fraction.to_bits(),
            "{}: fraction not bit-exact",
            a.name
        );
    }
    assert_eq!(resumed.profile.render("suite"), reference.profile.render("suite"));
    assert_eq!(
        masked_records(&resumed, &resumed_rec),
        masked_records(&reference, &reference_rec),
        "telemetry record sets differ"
    );
    assert_eq!(
        resumed_rec.snapshot().to_json().render(),
        reference_rec.snapshot().to_json().render(),
        "recorder counter totals differ"
    );

    // The checkpoint file was repaired in place: all 5 records, no tail.
    let (final_checkpoint, summary) = Checkpoint::resume(&path).unwrap();
    assert_eq!(summary.restored, 5);
    assert_eq!(summary.dropped_tail, None);
    assert_eq!(final_checkpoint.restored_count(), 5);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_append_io_error_is_absorbed_by_retry() {
    let workloads = &suite()[..2]; // compress, gcc
    let path = tmp("append_fault.jsonl");
    // The first durable append fails with an injected io::Error; the
    // workload it belonged to is retried and re-checkpointed.
    let plan = Arc::new(FaultPlan::parse("err:durable/append@1x1").unwrap());
    let outcome = SuiteRunner::new()
        .checkpoint(Arc::new(Checkpoint::create(&path).unwrap()))
        .faults(plan)
        .retry(no_backoff(1))
        .try_run_workloads(workloads, DataSet::Test);
    assert!(outcome.is_clean(), "{:?}", outcome.failures);
    assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 1);
    assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 1);
    assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 0);
    let (_, summary) = Checkpoint::resume(&path).unwrap();
    assert_eq!(summary.restored, 2, "both workloads checkpointed despite the fault");
    assert_eq!(summary.dropped_tail, None);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn corrupted_profile_is_detected_at_load() {
    use value_profiling::core::{load_profile, write_profile};
    let path = tmp("integrity.tsv");
    let profile = SuiteRunner::new().run_workloads(&suite()[..1], DataSet::Test);
    write_profile(&path, &profile.workloads[0].metrics).unwrap();

    // Pristine: verified in both modes.
    let strict = load_profile(&path, IntegrityMode::Strict).unwrap();
    assert!(strict.integrity.is_verified());
    assert_eq!(strict.metrics.len(), profile.workloads[0].metrics.len());

    // Flip one digit in the body: strict load fails on the checksum,
    // lenient load succeeds but reports the corruption.
    let text = std::fs::read_to_string(&path).unwrap();
    let (header, body) = text.split_once('\n').unwrap();
    let (row, rest) = body.split_once('\n').unwrap();
    let at = row.find(|c: char| c.is_ascii_digit()).unwrap();
    let digit = row.as_bytes()[at] as char;
    let flipped = if digit == '9' { '0' } else { char::from(row.as_bytes()[at] + 1) };
    let mut row = row.to_string();
    row.replace_range(at..=at, &flipped.to_string());
    let corrupted = format!("{header}\n{row}\n{rest}");
    assert_ne!(text, corrupted);
    std::fs::write(&path, &corrupted).unwrap();
    match load_profile(&path, IntegrityMode::Strict) {
        Err(LoadProfileError::Parse(e)) => assert!(e.to_string().contains("crc32 mismatch"), "{e}"),
        other => panic!("strict load of corrupt profile: {other:?}"),
    }
    let lenient = load_profile(&path, IntegrityMode::Lenient).unwrap();
    assert!(!lenient.integrity.is_verified());
    assert!(matches!(lenient.integrity, Integrity::Corrupt { .. }), "{:?}", lenient.integrity);
    std::fs::remove_file(&path).unwrap();
}
