//! Trace-driven profiling must be indistinguishable from live profiling:
//! recording a workload's event stream and replaying it into the value
//! profiler yields bit-identical metrics.

use value_profiling::core::{track::TrackerConfig, InstructionProfiler, MemoryProfiler};
use value_profiling::instrument::{Instrumenter, Selection, Trace};
use value_profiling::workloads::{suite, DataSet};

const BUDGET: u64 = 100_000_000;

#[test]
fn replayed_instruction_profiles_match_live() {
    for w in suite() {
        let mut live = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut live)
            .unwrap();

        let trace = Trace::record(
            w.program(),
            w.machine_config(DataSet::Test),
            BUDGET,
            Selection::LoadsOnly,
        )
        .unwrap();
        let mut replayed = InstructionProfiler::new(TrackerConfig::with_full());
        trace.replay(&mut replayed).unwrap();

        assert_eq!(live.metrics(), replayed.metrics(), "{}", w.name());
    }
}

#[test]
fn replayed_memory_profiles_match_live() {
    let w = suite().into_iter().find(|w| w.name() == "gcc").unwrap();
    let mut live = MemoryProfiler::new(TrackerConfig::with_full());
    Instrumenter::new()
        .select(Selection::MemoryOps)
        .run(w.program(), w.machine_config(DataSet::Test), BUDGET, &mut live)
        .unwrap();
    let trace =
        Trace::record(w.program(), w.machine_config(DataSet::Test), BUDGET, Selection::MemoryOps)
            .unwrap();
    let mut replayed = MemoryProfiler::new(TrackerConfig::with_full());
    trace.replay(&mut replayed).unwrap();
    assert_eq!(live.metrics(), replayed.metrics());
}

#[test]
fn serialized_trace_replays_identically() {
    let w = suite().into_iter().find(|w| w.name() == "li").unwrap();
    let trace =
        Trace::record(w.program(), w.machine_config(DataSet::Test), BUDGET, Selection::LoadsOnly)
            .unwrap();
    let restored = Trace::from_bytes(&trace.to_bytes()).unwrap();
    let mut a = InstructionProfiler::new(TrackerConfig::with_full());
    let mut b = InstructionProfiler::new(TrackerConfig::with_full());
    trace.replay(&mut a).unwrap();
    restored.replay(&mut b).unwrap();
    assert_eq!(a.metrics(), b.metrics());
}
