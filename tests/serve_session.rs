//! End-to-end contract of `vprof serve`: a profile streamed through the
//! daemon is byte-identical to a local `vprof replay`, a `kill -9`
//! mid-checkpoint plus restart `--resume` loses nothing the client
//! cannot retransmit — profile TSV *and* telemetry land byte-identical
//! to an undisturbed run — and one session's injected failure never
//! perturbs another.
//!
//! These tests drive the real `vprof` binary because the properties
//! under test are process-level: `std::process::abort` in the daemon,
//! reconnecting clients, exit codes, and the daemon's stdout ledger.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Builds the `vprof` binary once and returns its path. Tests run from
/// `target/<profile>/deps/<test-bin>`, so the CLI lands two levels up.
fn vprof() -> &'static Path {
    static BIN: OnceLock<PathBuf> = OnceLock::new();
    BIN.get_or_init(|| {
        let me = std::env::current_exe().expect("test binary path");
        let profile_dir = me.parent().and_then(Path::parent).expect("target profile dir");
        let mut build = Command::new(option_env!("CARGO").unwrap_or("cargo"));
        build.args(["build", "-p", "vp-cli", "--quiet"]);
        if profile_dir.file_name().is_some_and(|n| n == "release") {
            build.arg("--release");
        }
        let status = build.status().expect("cargo build -p vp-cli");
        assert!(status.success(), "building vprof failed");
        let bin = profile_dir.join("vprof");
        assert!(bin.exists(), "no vprof at {}", bin.display());
        bin
    })
}

struct Run {
    stdout: String,
    stderr: String,
    ok: bool,
}

/// Runs `vprof` to completion in `dir` with a scrubbed fault-injection
/// environment plus `envs`.
fn run_in(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Run {
    let mut cmd = Command::new(vprof());
    cmd.args(args).current_dir(dir);
    for var in ["VP_FAULTS", "VP_FAULTS_SCOPE", "VP_FAULT_SELF", "VP_TELEMETRY"] {
        cmd.env_remove(var);
    }
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("spawn vprof");
    Run {
        stdout: String::from_utf8(out.stdout).expect("utf8 stdout"),
        stderr: String::from_utf8(out.stderr).expect("utf8 stderr"),
        ok: out.status.success(),
    }
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vp-serve-it-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns a serve daemon in `dir` and waits for its socket to appear.
fn spawn_serve(dir: &Path, args: &[&str], envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(vprof());
    cmd.arg("serve").args(args).current_dir(dir).stdout(Stdio::piped()).stderr(Stdio::piped());
    for var in ["VP_FAULTS", "VP_FAULTS_SCOPE", "VP_FAULT_SELF", "VP_TELEMETRY"] {
        cmd.env_remove(var);
    }
    for (key, value) in envs {
        cmd.env(key, value);
    }
    // A crashed daemon leaves its socket file behind; `bind` replaces
    // it, but waiting on `exists` would pass before the new daemon is
    // up. Unlink first so the file reappearing means "bound".
    let sock = dir.join("serve.sock");
    let _ = std::fs::remove_file(&sock);
    let child = cmd.spawn().expect("spawn vprof serve");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {}", sock.display());
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

/// Sends `SHUTDOWN` and waits for the daemon to drain; returns its
/// stdout and whether it exited 0.
fn shutdown_and_reap(dir: &Path, mut daemon: Child) -> (String, bool) {
    let down = run_in(dir, &["client", "--connect", "serve.sock", "--shutdown"], &[]);
    assert!(down.ok, "shutdown send failed: {}", down.stderr);
    reap(&mut daemon)
}

/// Waits (bounded) for the daemon to exit and collects its stdout.
fn reap(daemon: &mut Child) -> (String, bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(status) = daemon.try_wait().expect("try_wait") {
            break status;
        }
        assert!(Instant::now() < deadline, "daemon did not exit");
        std::thread::sleep(Duration::from_millis(20));
    };
    let mut stdout = String::new();
    use std::io::Read as _;
    if let Some(mut out) = daemon.stdout.take() {
        out.read_to_string(&mut stdout).expect("daemon stdout");
    }
    (stdout, status.success())
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"))
}

/// Records `li` with small chunks so one session spans many checkpoint
/// boundaries (6000 events / 500 = 12 chunks, checkpoints at 8 and END).
fn record_trace(dir: &Path) {
    let rec = run_in(dir, &["record", "li", "-o", "li.vpc", "--chunk-events", "500"], &[]);
    assert!(rec.ok, "record failed: {}", rec.stderr);
    assert!(rec.stdout.contains("12 chunks"), "unexpected layout: {}", rec.stdout);
}

#[test]
fn streamed_profile_matches_replay_byte_for_byte() {
    let dir = fresh_dir("roundtrip");
    record_trace(&dir);
    let replay = run_in(&dir, &["replay", "li.vpc", "--save", "replay.tsv"], &[]);
    assert!(replay.ok, "replay failed: {}", replay.stderr);

    let daemon = spawn_serve(&dir, &["--socket", "serve.sock", "--state-dir", "state"], &[]);
    let client = run_in(
        &dir,
        &[
            "client",
            "li.vpc",
            "--connect",
            "serve.sock",
            "--tenant",
            "acme",
            "--save",
            "client.tsv",
            "--query",
        ],
        &[],
    );
    assert!(client.ok, "client failed: {}", client.stderr);
    assert!(client.stdout.contains("12 chunks"), "client stdout: {}", client.stdout);
    let (summary, ok) = shutdown_and_reap(&dir, daemon);
    assert!(ok, "daemon exit nonzero: {summary}");
    assert!(
        summary.contains("serve: 1 completed, 0 killed, 0 rejected, 12 chunks acked"),
        "daemon summary: {summary}"
    );

    assert_eq!(read(&dir, "client.tsv"), read(&dir, "replay.tsv"), "stream vs replay TSV differ");
}

/// The crash oracle: kill the daemon mid-checkpoint (after the chunk log
/// is synced, before the meta append — the worst durable-but-unacked
/// window), restart `--resume`, rerun the client. Profile and telemetry
/// must be byte-identical to a never-crashed run.
fn kill_resume_oracle(tag: &str, tenants: &[&str]) {
    let base = fresh_dir(&format!("base-{tag}"));
    let hurt = fresh_dir(&format!("hurt-{tag}"));
    for dir in [&base, &hurt] {
        record_trace(dir);
    }
    let serve_args = ["--socket", "serve.sock", "--state-dir", "state", "--telemetry", "t.jsonl"];
    let run_clients = |dir: &Path, expect_ok: bool| {
        let runs: Vec<Run> = std::thread::scope(|scope| {
            let handles: Vec<_> = tenants
                .iter()
                .map(|tenant| {
                    scope.spawn(move || {
                        run_in(
                            dir,
                            &[
                                "client",
                                "li.vpc",
                                "--connect",
                                "serve.sock",
                                "--tenant",
                                tenant,
                                "--save",
                                &format!("{tenant}.tsv"),
                            ],
                            &[],
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for run in &runs {
            if expect_ok {
                assert!(run.ok, "client failed: {} {}", run.stdout, run.stderr);
            } else {
                assert!(!run.ok, "client survived the daemon crash: {}", run.stdout);
            }
        }
        runs
    };

    // Undisturbed baseline.
    let daemon = spawn_serve(&base, &serve_args, &[]);
    run_clients(&base, true);
    let (base_summary, ok) = shutdown_and_reap(&base, daemon);
    assert!(ok, "baseline daemon exit nonzero: {base_summary}");

    // Disturbed: the first checkpoint anywhere aborts the daemon, so no
    // session can complete — every client dies with it.
    let mut daemon = spawn_serve(&hurt, &serve_args, &[("VP_FAULTS", "kill:session/checkpoint@1")]);
    run_clients(&hurt, false);
    let (_, crashed_ok) = reap(&mut daemon);
    assert!(!crashed_ok, "daemon should have aborted on the injected kill");

    // Restart, resume, retransmit from the durable cursor.
    let mut resume_args = serve_args.to_vec();
    resume_args.push("--resume");
    let daemon = spawn_serve(&hurt, &resume_args, &[]);
    let reruns = run_clients(&hurt, true);
    if tenants.len() == 1 {
        // One client deterministically checkpoints at chunk 8 before the
        // kill; with concurrent clients the crash point varies.
        assert!(
            reruns[0].stdout.contains("resumed at 8"),
            "client did not resume from the checkpoint: {}",
            reruns[0].stdout
        );
    }
    let (hurt_summary, ok) = shutdown_and_reap(&hurt, daemon);
    assert!(ok, "resumed daemon exit nonzero: {hurt_summary}");

    assert_eq!(base_summary, hurt_summary, "daemon ledgers diverged");
    assert_eq!(read(&base, "t.jsonl"), read(&hurt, "t.jsonl"), "telemetry diverged");
    for tenant in tenants {
        assert_eq!(
            read(&base, &format!("{tenant}.tsv")),
            read(&hurt, &format!("{tenant}.tsv")),
            "profile for {tenant} diverged"
        );
    }
}

#[test]
fn kill_and_resume_is_byte_identical_one_client() {
    kill_resume_oracle("one", &["solo"]);
}

#[test]
fn kill_and_resume_is_byte_identical_eight_clients() {
    kill_resume_oracle("eight", &["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"]);
}

#[test]
fn injected_session_failure_never_perturbs_other_tenants() {
    let dir = fresh_dir("isolation");
    record_trace(&dir);
    let replay = run_in(&dir, &["replay", "li.vpc", "--save", "replay.tsv"], &[]);
    assert!(replay.ok, "replay failed: {}", replay.stderr);

    // The fault plan panics the third frame of tenant `evil`'s session
    // and touches nothing else.
    let daemon = spawn_serve(
        &dir,
        &["--socket", "serve.sock", "--state-dir", "state"],
        &[("VP_FAULTS", "panic:session/evil/frame@3")],
    );
    let good = |save: &str| {
        run_in(
            &dir,
            &["client", "li.vpc", "--connect", "serve.sock", "--tenant", "good", "--save", save],
            &[],
        )
    };
    let before = good("good-before.tsv");
    assert!(before.ok, "good client (before) failed: {}", before.stderr);

    let evil =
        run_in(&dir, &["client", "li.vpc", "--connect", "serve.sock", "--tenant", "evil"], &[]);
    assert!(!evil.ok, "evil session should have been killed");
    assert!(
        evil.stderr.contains("session panicked"),
        "expected a typed kill, got: {}",
        evil.stderr
    );

    // The daemon survived the panic: the same tenant keeps working.
    let after = good("good-after.tsv");
    assert!(after.ok, "good client (after) failed: {}", after.stderr);

    let (summary, ok) = shutdown_and_reap(&dir, daemon);
    assert!(ok, "daemon exit nonzero: {summary}");
    assert!(
        summary.contains("serve: 2 completed, 1 killed, 0 rejected, 24 chunks acked"),
        "daemon summary: {summary}"
    );
    assert_eq!(read(&dir, "good-before.tsv"), read(&dir, "replay.tsv"));
    assert_eq!(read(&dir, "good-after.tsv"), read(&dir, "replay.tsv"));
}
