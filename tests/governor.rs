//! Resource-governor contract: a memory-budgeted run degrades gracefully
//! (exact TNV metrics survive, only the exact histograms go), a hung
//! workload is cancelled at its deadline and quarantined without losing
//! the rest of the suite, and governed output is independent of the
//! worker count. The hang is driven by a deterministic [`FaultPlan`] —
//! the only clock in these tests is the deadline itself.

use std::sync::Arc;
use std::time::Duration;

use value_profiling::core::{FaultPlan, MemBudget};
use value_profiling::instrument::FailureKind;
use value_profiling::obs::CounterId;
use value_profiling::workloads::{suite, DataSet};
use vp_bench::{RetryPolicy, SuiteRunner};

#[test]
fn degraded_run_keeps_tnv_metrics_exact_and_loses_only_full_histograms() {
    let workloads = &suite()[..2];
    let ungoverned = SuiteRunner::new().run_workloads(workloads, DataSet::Test);

    // Probe the full footprint with a generous budget, then rerun under
    // half of it so the governor must degrade — everything here is
    // deterministic, so the derived budget is too.
    let generous = SuiteRunner::new()
        .mem_budget(Some(MemBudget::mib(64)))
        .run_workloads(workloads, DataSet::Test);
    for (g, u) in generous.workloads.iter().zip(&ungoverned.workloads) {
        assert_eq!(g.metrics, u.metrics, "generous budget is invisible: {}", g.name);
        assert!(!g.governor.unwrap().intervened(), "{}", g.name);
    }

    let peak = generous.workloads.iter().map(|w| w.governor.unwrap().bytes_peak).max().unwrap();
    let tight = MemBudget::bytes(peak as usize / 2);
    let governed =
        SuiteRunner::new().mem_budget(Some(tight)).run_workloads(workloads, DataSet::Test);

    let mut total_degraded = 0;
    for (g, u) in governed.workloads.iter().zip(&ungoverned.workloads) {
        let gov = g.governor.expect("governed run reports stats");
        assert!(gov.bytes_peak <= tight.limit_bytes() as u64, "{}: {gov:?}", g.name);
        assert_eq!(gov.entities_dropped, 0, "{}: budget only forces rung 1", g.name);
        total_degraded += gov.entities_degraded;

        // Same entities, and for every one of them the TNV-derived
        // metrics are bit-exact; only degraded entities lose inv_all*.
        assert_eq!(g.metrics.len(), u.metrics.len(), "{}", g.name);
        let mut absent = 0;
        for (gm, um) in g.metrics.iter().zip(&u.metrics) {
            assert_eq!(gm.id, um.id);
            assert_eq!(gm.executions, um.executions);
            assert_eq!(gm.lvp.to_bits(), um.lvp.to_bits(), "{} entity {}", g.name, gm.id);
            assert_eq!(gm.inv_top1.to_bits(), um.inv_top1.to_bits(), "{} entity {}", g.name, gm.id);
            assert_eq!(gm.inv_topn.to_bits(), um.inv_topn.to_bits(), "{} entity {}", g.name, gm.id);
            assert_eq!(gm.pct_zero.to_bits(), um.pct_zero.to_bits(), "{} entity {}", g.name, gm.id);
            assert_eq!(gm.top_value, um.top_value, "{} entity {}", g.name, gm.id);
            if gm.inv_all1.is_none() {
                assert!(gm.inv_alln.is_none() && gm.distinct.is_none());
                absent += 1;
            } else {
                assert_eq!(gm, um, "undegraded entity is fully identical");
            }
        }
        assert_eq!(
            absent, gov.entities_degraded,
            "{}: inv_all* absent exactly for the degraded entities",
            g.name
        );
    }
    assert!(total_degraded > 0, "the tight budget actually degraded something");
}

#[test]
fn hung_workload_times_out_and_the_rest_of_the_suite_completes() {
    let workloads = &suite()[..4]; // compress, gcc, li, ijpeg
    let clean = SuiteRunner::new().run_workloads(workloads, DataSet::Test);
    let plan = Arc::new(FaultPlan::parse("hang:workload/gcc").unwrap());
    let outcome = SuiteRunner::new()
        .faults(plan)
        .retry(RetryPolicy::none())
        .deadline(Some(Duration::from_millis(200)))
        .try_run_workloads(workloads, DataSet::Test);

    // Exactly the hung workload is quarantined, as a timeout, not a panic.
    assert_eq!(outcome.failures.len(), 1);
    let f = &outcome.failures[0];
    assert_eq!((f.name, f.kind, f.attempts), ("gcc", FailureKind::Timeout, 1));
    assert_eq!(f.error, "deadline exceeded", "timeout message is deterministic");
    assert_eq!(outcome.faults.get(CounterId::WorkloadTimeout), 1);
    assert_eq!(outcome.faults.get(CounterId::WorkloadPanic), 0);
    assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 0);
    assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 1);

    // Everything else completed identically to a clean run.
    let surviving: Vec<&str> = outcome.profile.workloads.iter().map(|w| w.name).collect();
    assert_eq!(surviving, ["compress", "li", "ijpeg"]);
    for w in &outcome.profile.workloads {
        let reference = clean.workloads.iter().find(|c| c.name == w.name).unwrap();
        assert_eq!(w.metrics, reference.metrics, "{}", w.name);
        assert_eq!(w.events, reference.events, "{}", w.name);
        assert_eq!(w.instructions, reference.instructions, "{}", w.name);
    }

    // The failure table carries the kind and the fixed message.
    let table = outcome.render_failures();
    assert!(table.starts_with("failed"), "{table}");
    assert!(table.contains("timeout") && table.contains("deadline exceeded"), "{table}");
}

#[test]
fn hang_retries_then_quarantines_with_exact_counters() {
    let workloads = &suite()[..3];
    let plan = Arc::new(FaultPlan::parse("hang:workload/gcc").unwrap());
    let policy = RetryPolicy { max_retries: 1, backoff_base_ms: 0, backoff_cap_ms: 0 };
    let outcome = SuiteRunner::new()
        .faults(plan)
        .retry(policy)
        .deadline(Some(Duration::from_millis(150)))
        .try_run_workloads(workloads, DataSet::Test);
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(outcome.failures[0].attempts, 2, "first try + one retry");
    assert_eq!(outcome.faults.get(CounterId::WorkloadTimeout), 2, "each attempt timed out");
    assert_eq!(outcome.faults.get(CounterId::WorkloadRetry), 1);
    assert_eq!(outcome.faults.get(CounterId::WorkloadQuarantined), 1);
}

#[test]
fn governed_run_is_independent_of_worker_count() {
    let workloads = &suite()[..4];
    let budget = Some(MemBudget::bytes(96 * 1024));
    let serial = SuiteRunner::new()
        .jobs(1)
        .mem_budget(budget)
        .deadline(Some(Duration::from_secs(120)))
        .run_workloads(workloads, DataSet::Test);
    let parallel = SuiteRunner::new()
        .jobs(4)
        .mem_budget(budget)
        .deadline(Some(Duration::from_secs(120)))
        .run_workloads(workloads, DataSet::Test);
    assert_eq!(serial.workloads.len(), parallel.workloads.len());
    for (s, p) in serial.workloads.iter().zip(&parallel.workloads) {
        assert_eq!(s.name, p.name, "canonical order preserved");
        assert_eq!(s.metrics, p.metrics, "{}", s.name);
        assert_eq!(s.events, p.events, "{}", s.name);
        assert_eq!(s.governor, p.governor, "{}", s.name);
    }
}

#[test]
fn bytes_peak_is_exactly_the_arena_high_water_mark() {
    use value_profiling::core::{InstructionProfiler, TrackerConfig};

    // The governor's byte meter is arena-backed: every tracker allocation
    // is charged and every degradation release is credited, so
    // `bytes_peak` is the arena's high-water mark by construction — not
    // an estimate. Exercise both a budget that never intervenes and one
    // that forces degradation mid-stream.
    for budget in [MemBudget::mib(64), MemBudget::bytes(48 * 1024)] {
        let mut profiler = InstructionProfiler::with_budget(TrackerConfig::with_full(), budget);
        for i in 0..40_000u64 {
            profiler.observe((i % 97) as u32, i % 1013);
        }
        let stats = profiler.governor_stats().expect("budgeted profiler reports stats");
        let arena = profiler.arena().expect("budgeted profiler exposes its arena");
        assert_eq!(
            stats.bytes_peak,
            arena.high_water_bytes() as u64,
            "budget {budget:?}: peak is the arena high-water mark, exactly"
        );
        assert!(stats.bytes_peak > 0, "the stream allocated tracker state");
        assert!(
            stats.bytes_peak <= budget.limit_bytes() as u64,
            "budget {budget:?}: settled peak never exceeds the budget"
        );
    }
}

#[test]
fn governed_sharded_run_matches_governed_serial_totals() {
    let workloads = &suite()[..2];
    let budget = MemBudget::mib(64);
    let serial =
        SuiteRunner::new().mem_budget(Some(budget)).run_workloads(workloads, DataSet::Test);
    let sharded = SuiteRunner::new()
        .mem_budget(Some(budget))
        .shards(4)
        .run_workloads(workloads, DataSet::Test);
    for (s, h) in serial.workloads.iter().zip(&sharded.workloads) {
        assert_eq!(s.metrics, h.metrics, "{}", s.name);
        let (sg, hg) = (s.governor.unwrap(), h.governor.unwrap());
        // Under a generous budget neither intervenes; the sharded peaks
        // sum to at most the whole budget's worth of shard splits.
        assert!(!sg.intervened() && !hg.intervened(), "{}", s.name);
        assert!(hg.bytes_peak <= budget.limit_bytes() as u64, "{}", s.name);
    }
}
