//! Differential ε-oracle for phase-aware adaptive profiling.
//!
//! Three guarantees, each checked against an exact `FullProfile` ground
//! truth (`inv_all1`, the exact top-value share):
//!
//! 1. **Adaptive tracks the truth where convergent goes blind.** On the
//!    phase-shifting adversarial families the stock convergent profiler
//!    converges on the first phase, backs off, and never sees the shift:
//!    its profiled-sample invariance diverges from the truth by far more
//!    than ε. The adaptive profiler's window detector re-arms the sampler
//!    at each shift, keeping its estimate within ε. *Both* directions are
//!    asserted: the divergence must exist (or the family has regressed
//!    into an easy input) and the adaptive estimate must close it.
//! 2. **Phase-free streams are bit-identical.** On stationary streams the
//!    detector observes but never fires, so the adaptive profiler is the
//!    convergent profiler — metrics, stats, events and TNV counters all
//!    exactly equal.
//! 3. **Output is independent of `--jobs` and `--shards`.** The suite
//!    runner produces identical metrics and phase counters at every
//!    parallelism setting.
//!
//! ε = 0.05 matches the acceptance bound in ROADMAP item 4.

use std::collections::HashMap;

use value_profiling::core::{
    track::TrackerConfig, AdaptiveProfiler, ConvergentConfig, ConvergentProfiler,
    InstructionProfiler, PhaseBudget,
};
use value_profiling::workloads::adversarial::{
    diurnal, heavy_tailed, phase_oscillating, tnv_churn,
};
use value_profiling::workloads::{suite, DataSet};
use vp_bench::{ProfileMode, SuiteRunner};

const EPS: f64 = 0.05;

/// A convergent configuration whose skip ladder dwarfs the adversarial
/// streams: after the first convergence the instruction skips 40 000
/// executions, longer than any remaining per-entity stream, so the stock
/// profiler is *provably* blind to everything after its first back-off.
/// The generous `delta` makes convergence take exactly the minimum three
/// bursts (150 events) after every (re-)arm, so the adaptive profiler
/// samples each phase equally and its estimate is unbiased.
fn blinding_config() -> ConvergentConfig {
    ConvergentConfig {
        burst: 50,
        delta: 0.2,
        stable_checks: 2,
        initial_skip: 40_000,
        backoff: 2.0,
        max_skip: 1_000_000,
    }
}

/// Exact top-value share per entity from a full profile of `events`.
fn truth(events: &[(u32, u64)]) -> HashMap<u64, f64> {
    let mut full = InstructionProfiler::new(TrackerConfig::with_full());
    full.observe_batch(events);
    full.metrics()
        .iter()
        .map(|m| (m.id, m.inv_all1.expect("full profile keeps the exact histogram")))
        .collect()
}

/// Exact top-value share of each entity's *profiled sample* — trackers
/// keep the full histogram so the comparison isolates sampling blindness
/// from TNV estimation error.
fn profiled_share(metrics: &[value_profiling::core::EntityMetrics]) -> HashMap<u64, f64> {
    metrics.iter().map(|m| (m.id, m.inv_all1.expect("trackers keep the exact histogram"))).collect()
}

/// Runs convergent and adaptive side by side and asserts the ε-oracle:
/// every entity where convergent diverges from the truth by more than ε
/// is tracked within ε by the adaptive profiler. Returns the divergent
/// entity count so callers can assert the pathology actually manifested.
fn assert_adaptive_closes_divergence(
    name: &str,
    events: &[(u32, u64)],
    config: ConvergentConfig,
    budget: PhaseBudget,
) -> (usize, AdaptiveProfiler) {
    let exact = truth(events);
    let mut conv = ConvergentProfiler::new(TrackerConfig::with_full(), config);
    conv.observe_batch(events);
    let mut adaptive = AdaptiveProfiler::new(TrackerConfig::with_full(), config, budget);
    adaptive.observe_batch(events);
    let conv_share = profiled_share(&conv.metrics());
    let adaptive_share = profiled_share(&adaptive.metrics());
    let mut divergent = 0;
    for (&id, &t) in &exact {
        let c = conv_share[&id];
        let a = adaptive_share[&id];
        if (c - t).abs() > EPS {
            divergent += 1;
            assert!(
                (a - t).abs() <= EPS,
                "{name} pc={id}: convergent diverged (truth {t:.3}, convergent {c:.3}) \
                 but adaptive missed too (adaptive {a:.3}, ε={EPS})"
            );
        }
    }
    (divergent, adaptive)
}

#[test]
fn adaptive_tracks_truth_through_phase_oscillation() {
    // 3 entities, 8 phases of 4 096 per-entity events alternating values
    // 7 and 9: the truth is inv_all1 = 0.5 for every entity, while the
    // blinded convergent profiler only ever profiles value 7.
    let events = phase_oscillating(3, 4_096, &[7, 9], 98_304);
    let budget = PhaseBudget { max_rearms: 64, window: 1_024 };
    let (divergent, adaptive) =
        assert_adaptive_closes_divergence("phase-oscillating", &events, blinding_config(), budget);
    assert_eq!(divergent, 3, "every entity must blind the stock profiler");

    // The stream is engineered so the counters are exact: 32 768
    // per-entity events / 1 024-event windows = 32 windows per entity;
    // 7 phase transitions per entity, each aligned to a window boundary,
    // each caught while the instruction is backed off.
    let ps = adaptive.phase_stats();
    assert_eq!(ps.windows, 96, "3 entities x 32 windows");
    assert_eq!(ps.shifts_detected, 21, "3 entities x 7 phase transitions");
    assert_eq!(ps.rearms, 21, "every shift lands while backed off, within budget");
    assert_eq!(ps.rearms_denied, 0);
}

#[test]
fn adaptive_tracks_truth_through_diurnal_drift() {
    // 2 entities, 4 epochs of 8 192 per-entity events; the dominant value
    // (90% share over a 10% uniform noise floor) drifts once per epoch.
    // Truth per entity: top share ≈ 0.9 / 4; the blinded profiler reports
    // ≈ 0.9 from its epoch-0 sample.
    let events = diurnal(2, 8_192, 4, 10, 0xC0FFEE);
    let budget = PhaseBudget { max_rearms: 64, window: 1_024 };
    let (divergent, adaptive) =
        assert_adaptive_closes_divergence("diurnal", &events, blinding_config(), budget);
    assert_eq!(divergent, 2, "every entity must blind the stock profiler");
    let ps = adaptive.phase_stats();
    assert!(ps.shifts_detected >= 6, "3 epoch boundaries x 2 entities: {ps:?}");
    assert!(ps.rearms >= 6, "each boundary re-arms: {ps:?}");
}

#[test]
fn adaptive_tracks_truth_through_tnv_churn() {
    // Rotating dominance over 24 values in 500-event blocks: the truth
    // top share is tiny (≈ 0.04), while a profiler that converged early
    // reports the share of its early sample. A 250-event window (two per
    // block) and an effectively unbounded re-arm budget keep the adaptive
    // sample spread across the whole rotation.
    let events = tnv_churn(24, 500, 5, 60_000);
    let config = ConvergentConfig {
        burst: 25,
        delta: 0.1,
        stable_checks: 1,
        initial_skip: 40_000,
        backoff: 2.0,
        max_skip: 1_000_000,
    };
    let budget = PhaseBudget { max_rearms: 10_000, window: 250 };
    let (divergent, adaptive) =
        assert_adaptive_closes_divergence("tnv-churn", &events, config, budget);
    assert_eq!(divergent, 1, "the churn entity must blind an early-converging profiler");
    assert!(adaptive.phase_stats().rearms > 50, "{:?}", adaptive.phase_stats());
}

#[test]
fn stationary_streams_are_bit_identical_to_convergent() {
    // Heavy-tailed but *stationary*: the rank distribution never changes,
    // so no window signature ever shifts and the adaptive profiler must
    // equal the stock convergent profiler bit for bit. Same for trivially
    // invariant and mildly skewed streams.
    let streams: Vec<(&str, Vec<(u32, u64)>)> = vec![
        ("heavy-tailed", heavy_tailed(5, 512, 1.2, 60_000, 0xDECAF)),
        ("constant", (0..20_000u64).map(|i| ((i % 3) as u32, 7)).collect()),
        ("skewed", (0..20_000u64).map(|i| (0, if i % 10 == 9 { i % 7 } else { 42 })).collect()),
    ];
    let config = ConvergentConfig::default();
    let budget = PhaseBudget::default();
    for (name, events) in streams {
        let mut conv = ConvergentProfiler::new(TrackerConfig::default(), config);
        conv.observe_batch(&events);
        let mut adaptive = AdaptiveProfiler::new(TrackerConfig::default(), config, budget);
        adaptive.observe_batch(&events);
        let ps = adaptive.phase_stats();
        assert_eq!(ps.rearms, 0, "{name} is stationary; nothing may re-arm: {ps:?}");
        assert_eq!(adaptive.metrics(), conv.metrics(), "{name}");
        assert_eq!(adaptive.stats(), conv.stats(), "{name}");
        assert_eq!(adaptive.events(), conv.events(), "{name}");
        assert_eq!(adaptive.tnv_events(), conv.tnv_events(), "{name}");
        assert!(ps.windows > 0, "{name}: the detector still watched: {ps:?}");
    }
}

#[test]
fn suite_output_is_independent_of_jobs_and_shards() {
    let workloads = &suite()[..3];
    let mode = ProfileMode::Adaptive(
        ConvergentConfig::default(),
        PhaseBudget { max_rearms: 8, window: 512 },
    );
    let base = SuiteRunner::new().mode(mode).run_workloads(workloads, DataSet::Test);
    for (jobs, shards) in [(4, 1), (1, 7), (4, 7)] {
        let run = SuiteRunner::new()
            .mode(mode)
            .jobs(jobs)
            .shards(shards)
            .run_workloads(workloads, DataSet::Test);
        for (b, r) in base.workloads.iter().zip(&run.workloads) {
            let at = format!("{} jobs={jobs} shards={shards}", b.name);
            assert_eq!(b.metrics, r.metrics, "{at}");
            assert_eq!(b.aggregate, r.aggregate, "{at}");
            assert_eq!(b.profile_fraction, r.profile_fraction, "{at}");
            assert_eq!(b.instructions, r.instructions, "{at}");
            assert_eq!(b.phase, r.phase, "{at}");
        }
    }
}
