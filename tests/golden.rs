//! Golden-file regression tests for the experiment reports and their
//! telemetry records.
//!
//! Each test renders an experiment over a fixed slice of the workload
//! suite and compares the report text plus the *masked* telemetry (wall
//! times and other volatile fields replaced by `"<volatile>"`, see
//! [`vp_obs::telemetry::VOLATILE_KEYS`]) against a checked-in golden file
//! under `tests/golden/`.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! VP_UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use std::fs;
use std::path::PathBuf;

use value_profiling::core::{ConvergentConfig, PhaseBudget};
use value_profiling::obs::telemetry::{mask_volatile, parse_jsonl, to_jsonl};
use value_profiling::obs::Json;
use value_profiling::workloads::{suite, DataSet};
use vp_bench::{
    experiments, optimize_from_outcome, telemetry, OptimizeConfig, ProfileMode, SuiteRunner,
};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

/// Compares `actual` against `tests/golden/<name>`, or rewrites the file
/// when `VP_UPDATE_GOLDEN` is set.
fn check(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("VP_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n(regenerate with VP_UPDATE_GOLDEN=1 cargo test --test golden)",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden file; if the change is intentional, regenerate with \
         VP_UPDATE_GOLDEN=1 cargo test --test golden"
    );
}

fn masked_jsonl(records: &[Json]) -> String {
    let masked: Vec<Json> = records.iter().map(mask_volatile).collect();
    to_jsonl(&masked)
}

#[test]
fn exp_benchmarks_matches_golden() {
    let ws = suite();
    let report = experiments::benchmarks(&ws[..3], 1);
    check("exp_benchmarks.txt", &report.text);
    check("exp_benchmarks.jsonl", &masked_jsonl(&report.records));
}

#[test]
fn exp_convergent_matches_golden() {
    let ws = suite();
    let report = experiments::convergent(&ws[..3]);
    check("exp_convergent.txt", &report.text);
    check("exp_convergent.jsonl", &masked_jsonl(&report.records));
}

#[test]
fn exp_tnv_policy_matches_golden() {
    let ws = suite();
    let report = experiments::tnv_policy(&ws[..3]);
    check("exp_tnv_policy.txt", &report.text);
    check("exp_tnv_policy.jsonl", &masked_jsonl(&report.records));
}

#[test]
fn adaptive_phase_shift_run_matches_golden() {
    // A deterministic phase-shift run: the gcc workload's mode load
    // changes value between compile phases, so adaptive profiling with a
    // small window detects shifts. The masked telemetry (with its
    // per-workload `phase` objects) and the `vprof stats` rendering (with
    // its adaptive section) are both pinned.
    let ws = suite();
    let mode = ProfileMode::Adaptive(
        ConvergentConfig::default(),
        PhaseBudget { max_rearms: 8, window: 256 },
    );
    let profile = SuiteRunner::new().mode(mode).run_workloads(&ws[..3], DataSet::Test);
    let shifts: u64 = profile
        .workloads
        .iter()
        .map(|w| w.phase.expect("adaptive run reports phase stats").shifts_detected)
        .sum();
    assert!(shifts > 0, "the golden run must actually contain a phase shift");
    let records = telemetry::suite_records(
        "profile-suite",
        DataSet::Test,
        1,
        "adaptive-loads",
        &profile,
        None,
    );
    check("adaptive_suite.jsonl", &masked_jsonl(&records));
    // Render stats from the *masked* records, exactly what `vprof stats`
    // would show on the checked-in telemetry — wall times and rates
    // degrade to placeholders, everything else is deterministic.
    let masked: Vec<Json> = records.iter().map(mask_volatile).collect();
    let stats = value_profiling::obs::stats::summarize_records(&masked).unwrap();
    assert!(stats.contains("adaptive"), "stats must render the phase section:\n{stats}");
    check("adaptive_suite_stats.txt", &stats);
}

#[test]
fn optimize_run_matches_golden() {
    // The end-to-end optimize pipeline over a fixed workload set that
    // includes the stationary m88ksim case, so the golden pins a real
    // specialized site (guard values, hit/miss counts) alongside
    // rejections. Three artifacts are pinned: the durable CRC-footered
    // report, the masked telemetry, and the `vprof stats` rendering.
    let picked = ["compress", "gcc", "li", "m88ksim"];
    let ws: Vec<_> = suite().into_iter().filter(|w| picked.contains(&w.name())).collect();
    let outcome = SuiteRunner::new().try_run_workloads(&ws, DataSet::Train);
    assert!(outcome.is_clean(), "golden profiling pass must be fault-free");
    let report = optimize_from_outcome(&outcome, &ws, "full", &OptimizeConfig::default()).unwrap();
    let m88ksim = report.workloads.iter().find(|w| w.name == "m88ksim").unwrap();
    assert!(!m88ksim.result.sites.is_empty(), "the golden run must actually specialize a site");
    check("optimize_report.txt", &report.render_durable());
    let records = report.optimize_records("optimize");
    check("optimize_suite.jsonl", &masked_jsonl(&records));
    // Render stats from the *masked* records, exactly what `vprof stats`
    // would show on the checked-in telemetry.
    let masked: Vec<Json> = records.iter().map(mask_volatile).collect();
    let stats = value_profiling::obs::stats::summarize_records(&masked).unwrap();
    assert!(stats.contains("optimize"), "stats must render the optimize section:\n{stats}");
    check("optimize_suite_stats.txt", &stats);
}

#[test]
fn non_adaptive_goldens_carry_no_phase_section() {
    // Absent-when-off: the pre-existing goldens must contain no phase
    // fields, so runs without `--adaptive` stay byte-identical to before
    // the detector existed.
    for name in ["exp_benchmarks.jsonl", "exp_convergent.jsonl", "exp_tnv_policy.jsonl"] {
        let text = fs::read_to_string(golden_dir().join(name)).unwrap();
        assert!(!text.contains("\"phase\""), "{name} grew a phase field");
    }
}

#[test]
fn golden_telemetry_parses_and_is_masked() {
    // The checked-in .jsonl goldens must stay valid, schema-tagged JSONL
    // with every volatile field masked (masking is idempotent).
    for name in [
        "exp_benchmarks.jsonl",
        "exp_convergent.jsonl",
        "exp_tnv_policy.jsonl",
        "adaptive_suite.jsonl",
        "optimize_suite.jsonl",
    ] {
        let path = golden_dir().join(name);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "cannot read {}: {e} (run VP_UPDATE_GOLDEN=1 cargo test --test golden)",
                path.display()
            )
        });
        let records = parse_jsonl(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!records.is_empty(), "{name} is empty");
        for r in &records {
            assert!(r.get("schema").is_some(), "{name}: record without schema tag");
            assert_eq!(&mask_volatile(r), r, "{name}: volatile field left unmasked");
        }
    }
}
