//! Property test: specialization preserves behaviour on *randomly
//! generated* programs.
//!
//! For arbitrary pure ALU chains consuming a loaded value, the guarded
//! fast path built by `vp-specialize` (constant folding + liveness-pruned
//! materialization + guard) must produce bit-identical results — whether
//! the guard value is correct or wrong.

use proptest::prelude::*;
use value_profiling::sim::{InputSet, Machine, MachineConfig};
use value_profiling::specialize::{estimate, specialize, Candidate};

/// One generated chain instruction: register-immediate or register-register
/// ALU over the scratch registers r2..=r7.
#[derive(Debug, Clone)]
enum ChainOp {
    Imm { op: &'static str, rd: u8, rs: u8, imm: i16 },
    Reg { op: &'static str, rd: u8, rs: u8, rt: u8 },
}

const OPS: [&str; 16] = [
    "add", "sub", "mul", "div", "rem", "and", "or", "xor", "nor", "sll", "srl", "sra", "slt",
    "sltu", "seq", "sne",
];

fn arb_chain_op() -> impl Strategy<Value = ChainOp> {
    let reg = 2u8..8;
    prop_oneof![
        (0usize..OPS.len(), reg.clone(), reg.clone(), any::<i16>())
            .prop_map(|(o, rd, rs, imm)| ChainOp::Imm { op: OPS[o], rd, rs, imm }),
        (0usize..OPS.len(), reg.clone(), reg.clone(), reg)
            .prop_map(|(o, rd, rs, rt)| ChainOp::Reg { op: OPS[o], rd, rs, rt }),
    ]
}

fn render(ops: &[ChainOp]) -> String {
    ops.iter()
        .map(|op| match op {
            ChainOp::Imm { op, rd, rs, imm } => format!("            {op}i r{rd}, r{rs}, {imm}"),
            ChainOp::Reg { op, rd, rs, rt } => format!("            {op} r{rd}, r{rs}, r{rt}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn build_program(chain: &[ChainOp], loaded_value: u64) -> value_profiling::asm::Program {
    // The chain runs in a loop; all scratch registers are folded into the
    // exit code, so any folding error is observable.
    let src = format!(
        r#"
        .data
        x: .quad {loaded_value}
        .text
        main:
            la  r8, x
            li  r9, 10
        loop:
            ldd r2, 0(r8)
{}
            xor r20, r2, r3
            xor r20, r20, r4
            xor r20, r20, r5
            xor r20, r20, r6
            xor r20, r20, r7
            add r21, r21, r20
            addi r9, r9, -1
            bnz r9, loop
            andi a0, r21, 255
            sys exit
        "#,
        render(chain)
    );
    value_profiling::asm::assemble(&src).expect("generated program assembles")
}

fn run(program: &value_profiling::asm::Program) -> (i64, u64) {
    let mut m = Machine::new(program.clone(), MachineConfig::new().input(InputSet::empty()))
        .expect("machine");
    let out = m.run(1_000_000).expect("run");
    (out.exit_code, out.instructions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Specializing on the value the load actually produces keeps the
    /// result identical and never executes more instructions than the
    /// always-slow-path (wrong-value) variant.
    #[test]
    fn specialization_preserves_random_chains(
        chain in prop::collection::vec(arb_chain_op(), 1..12),
        value in any::<u64>(),
    ) {
        let program = build_program(&chain, value);
        let load_index = program
            .code()
            .iter()
            .position(|i| i.is_load())
            .expect("has load") as u32;
        let (base_code, _) = run(&program);

        let right = Candidate { load_index, value, invariance: 1.0, executions: 10 };
        let specialized = specialize(&program, &right).expect("specialize");
        let (spec_code, _) = run(&specialized);
        prop_assert_eq!(base_code, spec_code, "fast path changed the result");

        let wrong = Candidate {
            load_index,
            value: value.wrapping_add(1),
            invariance: 1.0,
            executions: 10,
        };
        let slow = specialize(&program, &wrong).expect("specialize wrong");
        let (slow_code, _) = run(&slow);
        prop_assert_eq!(base_code, slow_code, "slow path changed the result");
    }

    /// Whenever the cost estimate predicts a net gain (the condition the
    /// candidate finder enforces), the fast path really does run fewer
    /// instructions than the guard-missing slow path.
    #[test]
    fn estimate_predicts_fast_path_cost(
        chain in prop::collection::vec(arb_chain_op(), 2..12),
        value in any::<u64>(),
    ) {
        let program = build_program(&chain, value);
        let load_index =
            program.code().iter().position(|i| i.is_load()).expect("has load") as u32;
        let est = estimate(&program, load_index, value).expect("is a load");
        prop_assert!(est.consumed >= chain.len(), "region covers the chain");
        let right = Candidate { load_index, value, invariance: 1.0, executions: 10 };
        let wrong = Candidate {
            load_index,
            value: value.wrapping_add(1),
            invariance: 1.0,
            executions: 10,
        };
        let (_, fast) = run(&specialize(&program, &right).expect("specialize"));
        let (_, slow) = run(&specialize(&program, &wrong).expect("specialize wrong"));
        if est.net_gain() > 0 {
            prop_assert!(fast < slow, "estimated gain {} but fast {fast} >= slow {slow}", est.net_gain());
        }
        if est.net_gain() < 0 {
            prop_assert!(fast > slow, "estimated loss {} but fast {fast} <= slow {slow}", est.net_gain());
        }
    }
}
