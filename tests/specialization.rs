//! End-to-end specialization safety: the guarded fast path must preserve
//! observable behaviour on every workload it is applied to, whether the
//! specialized value is right, stale or plain wrong.

use value_profiling::core::{track::TrackerConfig, InstructionProfiler};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::sim::MachineConfig;
use value_profiling::specialize::{
    demo, evaluate, find_candidates, specialize, specialize_all, Candidate, CandidateOptions,
};
use value_profiling::workloads::{suite, DataSet, Workload};

const BUDGET: u64 = 100_000_000;

fn load_metrics(w: &Workload, ds: DataSet) -> InstructionProfiler {
    let mut p = InstructionProfiler::new(TrackerConfig::with_full());
    Instrumenter::new()
        .select(Selection::LoadsOnly)
        .run(w.program(), w.machine_config(ds), BUDGET, &mut p)
        .unwrap();
    p
}

#[test]
fn profile_guided_specialization_is_exact_suite_wide() {
    for w in suite() {
        let profiler = load_metrics(&w, DataSet::Test);
        let candidates =
            find_candidates(w.program(), &profiler.metrics(), CandidateOptions::default());
        let Ok(specialized) = specialize_all(w.program(), &candidates) else {
            continue; // e.g. scratch register in use — allowed to refuse
        };
        for ds in [DataSet::Test, DataSet::Train] {
            let report = evaluate(w.program(), &specialized, w.input(ds), BUDGET).unwrap();
            assert!(
                report.equivalent,
                "{} [{}]: specialization changed behaviour",
                w.name(),
                ds.name()
            );
        }
    }
}

#[test]
fn wrong_value_specialization_is_still_exact() {
    // Force-specialize every foldable load on a value it will never see:
    // the guard must route everything down the slow path unchanged.
    for w in suite() {
        let profiler = load_metrics(&w, DataSet::Test);
        let loose = CandidateOptions { min_invariance: 0.0, min_executions: 1, min_folded: 1 };
        let mut candidates = find_candidates(w.program(), &profiler.metrics(), loose);
        for c in &mut candidates {
            c.value = 0xdead_beef_dead_beef;
        }
        let Ok(specialized) = specialize_all(w.program(), &candidates) else {
            continue;
        };
        let report = evaluate(w.program(), &specialized, w.input(DataSet::Test), BUDGET).unwrap();
        assert!(report.equivalent, "{}: wrong-value guard broke behaviour", w.name());
        assert!(
            report.specialized_instructions >= report.base_instructions,
            "{}: wrong-value specialization cannot be faster",
            w.name()
        );
    }
}

#[test]
fn demo_kernel_speedup_monotone_in_invariance() {
    let program = demo::program();
    let mut last_speedup = f64::INFINITY;
    for period in [0u64, 100, 10] {
        let input = demo::input(10_000, period);
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new()
            .select(Selection::LoadsOnly)
            .run(&program, MachineConfig::new().input(input.clone()), BUDGET, &mut profiler)
            .unwrap();
        let candidates =
            find_candidates(&program, &profiler.metrics(), CandidateOptions::default());
        assert_eq!(candidates.len(), 1, "period {period}");
        let specialized = specialize(&program, &candidates[0]).unwrap();
        let report = evaluate(&program, &specialized, &input, BUDGET).unwrap();
        assert!(report.equivalent);
        assert!(
            report.speedup() <= last_speedup + 1e-9,
            "period {period}: speedup should not grow as invariance falls"
        );
        last_speedup = report.speedup();
    }
    assert!(last_speedup > 1.0, "even at period 10 the fast path should win");
}

#[test]
fn double_specialization_of_distinct_sites() {
    // Two foldable loads in one program: both can be specialized, and the
    // result remains exact.
    let program = value_profiling::asm::assemble(
        r#"
        .data
        a: .quad 6
        b: .quad 9
        .text
        main:
            la r10, a
            la r11, b
            li r9, 500
            li r18, 0
        loop:
            ldd  r2, 0(r10)
            muli r3, r2, 3
            addi r3, r3, 1
            xori r3, r3, 85
            slli r3, r3, 2
            srli r3, r3, 1
            andi r3, r3, 1023
            muli r3, r3, 7
            addi r3, r3, 13
            add  r18, r18, r3
            ldd  r4, 0(r11)
            xori r5, r4, 60
            muli r5, r5, 7
            addi r5, r5, 29
            slli r5, r5, 3
            srli r5, r5, 2
            andi r5, r5, 2047
            muli r5, r5, 11
            add  r18, r18, r5
            addi r9, r9, -1
            bnz  r9, loop
            andi a0, r18, 255
            sys  exit
        "#,
    )
    .unwrap();
    let loads: Vec<u32> = program
        .code()
        .iter()
        .enumerate()
        .filter(|(_, i)| i.is_load())
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(loads.len(), 2);
    let candidates = vec![
        Candidate { load_index: loads[0], value: 6, invariance: 1.0, executions: 500 },
        Candidate { load_index: loads[1], value: 9, invariance: 1.0, executions: 500 },
    ];
    let specialized = specialize_all(&program, &candidates).unwrap();
    let report =
        evaluate(&program, &specialized, &value_profiling::sim::InputSet::empty(), BUDGET).unwrap();
    assert!(report.equivalent);
    assert!(report.speedup() > 1.0, "speedup {}", report.speedup());
}
