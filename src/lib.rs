//! Umbrella crate re-exporting the Value Profiling workspace.
pub use vp_asm as asm;
pub use vp_core as core;
pub use vp_instrument as instrument;
pub use vp_isa as isa;
pub use vp_obs as obs;
pub use vp_predict as predict;
pub use vp_sim as sim;
pub use vp_specialize as specialize;
pub use vp_workloads as workloads;
