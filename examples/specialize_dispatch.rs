//! End-to-end code specialization (the paper's Chapter X payoff):
//! profile a simulator-style kernel, specialize its semi-invariant
//! configuration load, and measure the speedup as the configuration's
//! invariance degrades.
//!
//! Run with: `cargo run --example specialize_dispatch`

use value_profiling::core::{track::TrackerConfig, InstructionProfiler};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::sim::MachineConfig;
use value_profiling::specialize::{
    demo, evaluate, find_candidates, specialize_all, CandidateOptions,
};

const ITERATIONS: u64 = 20_000;
const BUDGET: u64 = 50_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = demo::program();
    println!(
        "kernel: {} instructions, config load at index {}\n",
        program.len(),
        demo::config_load_index(&program)
    );
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>9} {:>6}",
        "perturb", "inv-top1", "base", "specialized", "speedup", "ok"
    );

    // Sweep the configuration-change period: 0 = never changes (fully
    // invariant), small periods = frequently perturbed.
    for period in [0u64, 1000, 200, 50, 10, 3] {
        let input = demo::input(ITERATIONS, period);

        // 1. Profile the loads under this input.
        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new().select(Selection::LoadsOnly).run(
            &program,
            MachineConfig::new().input(input.clone()),
            BUDGET,
            &mut profiler,
        )?;

        // 2. Pick candidates and build the guarded fast path.
        let candidates =
            find_candidates(&program, &profiler.metrics(), CandidateOptions::default());
        let label = if period == 0 { "never".to_string() } else { format!("1/{period}") };
        let inv =
            profiler.metrics_for(demo::config_load_index(&program)).map_or(0.0, |m| m.inv_top1);

        if candidates.is_empty() {
            println!(
                "{label:>12} {:>9.1}% {:>12} {:>12} {:>9} {:>6}",
                inv * 100.0,
                "-",
                "-",
                "skipped",
                "-"
            );
            continue;
        }
        let specialized = specialize_all(&program, &candidates)?;

        // 3. Measure against the original on the same input.
        let report = evaluate(&program, &specialized, &input, BUDGET)?;
        println!(
            "{label:>12} {:>9.1}% {:>12} {:>12} {:>8.3}x {:>6}",
            inv * 100.0,
            report.base_instructions,
            report.specialized_instructions,
            report.speedup(),
            if report.equivalent { "yes" } else { "NO" },
        );
        assert!(report.equivalent, "specialization must preserve behaviour");
    }

    println!("\nThe guard keeps results exact at every invariance level;");
    println!("speedup shrinks as the perturbation rate rises, and the");
    println!("candidate finder stops specializing below its invariance bar.");
    Ok(())
}
