//! Value prediction guided by value profiles (the paper's §II.A use case):
//! compare predictor families on real workload load streams, then show how
//! profile-based filtering rescues a small predictor table from aliasing.
//!
//! Run with: `cargo run --example value_prediction`

use value_profiling::core::{track::TrackerConfig, InstructionProfiler};
use value_profiling::instrument::{Analysis, Instrumenter, Selection};
use value_profiling::predict::{
    evaluate, FilteredPredictor, HybridPredictor, LastValuePredictor, Predictor, StridePredictor,
    TwoLevelPredictor,
};
use value_profiling::sim::{InstrEvent, Machine};
use value_profiling::workloads::{suite, DataSet};

/// Collects the (pc, value) stream of all profiled loads.
#[derive(Default)]
struct StreamCollector(Vec<(u32, u64)>);

impl Analysis for StreamCollector {
    fn after_instr(&mut self, _machine: &Machine, event: &InstrEvent) {
        if let Some((_, value)) = event.dest {
            self.0.push((event.index, value));
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "program", "lvp%", "stride%", "2level%", "hybrid%", "lvp-misp%", "filt-hit%", "filt-misp%"
    );

    for w in suite() {
        // Gather the load value stream and, separately, a training profile.
        let mut collector = StreamCollector::default();
        Instrumenter::new().select(Selection::LoadsOnly).run(
            w.program(),
            w.machine_config(DataSet::Test),
            100_000_000,
            &mut collector,
        )?;
        let stream = collector.0;

        let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
        Instrumenter::new().select(Selection::LoadsOnly).run(
            w.program(),
            w.machine_config(DataSet::Train), // profile on the OTHER input
            100_000_000,
            &mut profiler,
        )?;

        let stats = |p: &mut dyn Predictor| evaluate(p, stream.iter().copied());
        let hit = |p: &mut dyn Predictor| stats(p).hit_rate() * 100.0;
        let lvp_stats = stats(&mut LastValuePredictor::new(1024));
        let stride = hit(&mut StridePredictor::new(1024));
        let two = hit(&mut TwoLevelPredictor::new());
        let hybrid =
            hit(&mut HybridPredictor::new(StridePredictor::new(1024), TwoLevelPredictor::new()));
        // Gabbay & Mendelson's use of profiles: only predict instructions
        // the *train-input* profile classified last-value predictable.
        // Coverage drops, but costly mispredictions collapse.
        let filt_stats = stats(&mut FilteredPredictor::from_profile(
            LastValuePredictor::new(1024),
            &profiler.metrics(),
            0.5,
        ));
        let total = lvp_stats.total().max(1) as f64;

        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>10.1} {:>10.1} {:>10.1}",
            w.name(),
            lvp_stats.hit_rate() * 100.0,
            stride,
            two,
            hybrid,
            lvp_stats.mispredictions as f64 / total * 100.0,
            filt_stats.hit_rate() * 100.0,
            filt_stats.mispredictions as f64 / total * 100.0,
        );
    }

    println!("\nHybrids dominate single predictors (the Wang & Franklin shape).");
    println!("Filtering on a train-input profile keeps most of LVP's hits while");
    println!("collapsing its mispredictions — the paper's proposed use of value");
    println!("profiles for prediction, and proof the profile transfers across inputs.");
    Ok(())
}
