//! Value profiling beyond instructions: memory locations and procedure
//! parameters (the thesis's extension chapters).
//!
//! Run with: `cargo run --example memory_profile`

use value_profiling::core::{track::TrackerConfig, MemoryProfiler, ParamProfiler};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with: a config word rewritten with the same value (an
    // invariant memory location), an accumulator (varying location), and a
    // helper procedure called with a mostly-constant argument.
    let program = value_profiling::asm::assemble(
        r#"
        .data
        config: .quad 0
        accum:  .quad 0
        .text
        .proc main
        main:
            li   r9, 200
            la   r10, config
            la   r11, accum
        loop:
            li   r12, 42
            std  r12, 0(r10)      # invariant store
            ldd  r13, 0(r11)
            add  r13, r13, r9
            std  r13, 0(r11)      # varying store
            remi r14, r9, 20
            bnz  r14, common
            li   a0, 7            # rare argument
            j    docall
        common:
            li   a0, 5            # common argument (95%)
        docall:
            call scale
            addi r9, r9, -1
            bnz  r9, loop
            sys  exit
        .endp
        .proc scale
        scale:
            muli v0, a0, 3
            ret
        .endp
        "#,
    )?;

    // Memory-location profile (values stored per 8-byte word).
    let mut mem = MemoryProfiler::new(TrackerConfig::with_full());
    Instrumenter::new().select(Selection::MemoryOps).run(
        &program,
        MachineConfig::new(),
        1_000_000,
        &mut mem,
    )?;
    println!("memory locations ({} tracked):", mem.locations());
    for m in mem.hottest(10) {
        println!(
            "  {:#09x}  stores {:>5}  inv-top1 {:5.1}%  top value {:?}",
            m.id,
            m.executions,
            m.inv_top1 * 100.0,
            m.top_value,
        );
    }

    // Procedure parameter / return-value profile.
    let mut params = ParamProfiler::new(TrackerConfig::with_full(), 1);
    Instrumenter::new().select(Selection::None).with_procedures(true).run(
        &program,
        MachineConfig::new(),
        1_000_000,
        &mut params,
    )?;
    println!("\nprocedure parameters and returns:");
    for p in params.metrics() {
        println!(
            "  proc {} {:<8} execs {:>5}  inv-top1 {:5.1}%  top value {:?}",
            p.proc_index,
            format!("{:?}", p.slot),
            p.metrics.executions,
            p.metrics.inv_top1 * 100.0,
            p.metrics.top_value,
        );
    }

    println!("\nThe config word is a fully invariant location; the accumulator");
    println!("is fully varying; `scale`'s argument is 95% the value 5 — a");
    println!("specialization candidate found without looking at any source.");
    Ok(())
}
