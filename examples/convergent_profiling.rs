//! The convergent ("intelligent") sampling profiler versus full profiling
//! on the benchmark suite: how much profiling work is saved, and how close
//! the sampled invariance stays to the exact one (experiment E7's shape).
//!
//! Run with: `cargo run --example convergent_profiling`

use value_profiling::core::{
    compare, track::TrackerConfig, ConvergentConfig, ConvergentProfiler, InstructionProfiler,
};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::workloads::{suite, DataSet};

const BUDGET: u64 = 100_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "program", "full inv%", "conv inv%", "profiled%", "mean|diff|", "corr"
    );

    for w in suite() {
        // Full (every load, every execution).
        let mut full = InstructionProfiler::new(TrackerConfig::default());
        Instrumenter::new().select(Selection::LoadsOnly).run(
            w.program(),
            w.machine_config(DataSet::Test),
            BUDGET,
            &mut full,
        )?;

        // Convergent (bursts + geometric backoff once invariance settles).
        let mut conv =
            ConvergentProfiler::new(TrackerConfig::default(), ConvergentConfig::default());
        Instrumenter::new().select(Selection::LoadsOnly).run(
            w.program(),
            w.machine_config(DataSet::Test),
            BUDGET,
            &mut conv,
        )?;

        let comparison = compare(&full.metrics(), &conv.metrics());
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>11.1}% {:>12.4} {:>10.3}",
            w.name(),
            full.aggregate().inv_top1 * 100.0,
            conv.aggregate().inv_top1 * 100.0,
            conv.overall_profile_fraction() * 100.0,
            comparison.mean_abs_inv_diff,
            comparison.inv_correlation,
        );
    }

    println!("\nConverged instructions are profiled in ever-rarer bursts, so the");
    println!("profiled fraction falls far below 100% while the sampled invariance");
    println!("tracks the full profile (small mean |diff|, high correlation).");
    Ok(())
}
