//! Quickstart: write a tiny program, value-profile its loads, read the
//! paper's metrics off the report.
//!
//! Run with: `cargo run --example quickstart`

use value_profiling::core::InstructionProfiler;
use value_profiling::core::{render_metric_table, report::row, track::TrackerConfig};
use value_profiling::instrument::{Instrumenter, Selection};
use value_profiling::sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop with three loads of very different value behaviour:
    //  - `mode`   is written once and read every iteration  -> invariant
    //  - `toggle` alternates between two values             -> 50% invariant
    //  - `counter` accumulates on every iteration           -> varying
    let program = value_profiling::asm::assemble(
        r#"
        .data
        mode:   .quad 3
        toggle: .quad 0
        counter: .quad 0
        .text
        .proc main
        main:
            li   r9, 100             # iterations
            la   r10, mode
            la   r11, toggle
            la   r12, counter
        loop:
            ldd  r2, 0(r10)          # invariant load
            ldd  r3, 0(r11)          # alternating load
            xori r4, r3, 1
            std  r4, 0(r11)
            ldd  r5, 0(r12)          # varying load (7, 14, 21, ...)
            addi r5, r5, 7
            std  r5, 0(r12)
            addi r9, r9, -1
            bnz  r9, loop
            sys  exit
        .endp
        "#,
    )?;

    // Attach the paper's load-value profiler through the ATOM-style layer.
    let mut profiler = InstructionProfiler::new(TrackerConfig::with_full());
    let run = Instrumenter::new().select(Selection::LoadsOnly).run(
        &program,
        MachineConfig::new(),
        1_000_000,
        &mut profiler,
    )?;

    println!(
        "ran {} instructions, {} loads profiled\n",
        run.outcome.instructions, run.counts.load_events
    );
    println!(
        "{}",
        render_metric_table("quickstart: loads", &[row("quickstart", &profiler.metrics())])
    );

    println!("per-load detail:");
    for m in profiler.metrics() {
        println!(
            "  [{}] {:<18} inv-top1 {:5.1}%  lvp {:5.1}%  distinct {:>3}  top value {:?}",
            m.id,
            program.code()[m.id as usize].to_string(),
            m.inv_top1 * 100.0,
            m.lvp * 100.0,
            m.distinct.unwrap_or(0),
            m.top_value,
        );
    }
    Ok(())
}
